module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr
module Config = Threadscan.Config
module Delete_buffer = Threadscan.Delete_buffer
module Master_buffer = Threadscan.Master_buffer

let check = Alcotest.(check int)

let cfg = Runtime.default_config

let small_ts ?(help_free = false) ?(buffer_size = 8) ?(max_threads = 16) () =
  Threadscan.create ~config:{ Config.default with max_threads; buffer_size; help_free } ()

(* ---------------------------- delete buffer ----------------------------- *)

let test_db_push_drain () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~capacity:4 () in
         Alcotest.(check bool) "push 1" true (Delete_buffer.push b 10);
         Alcotest.(check bool) "push 2" true (Delete_buffer.push b 20);
         check "size" 2 (Delete_buffer.size b);
         let got = ref [] in
         Delete_buffer.drain b (fun p ->
             got := p :: !got;
             true);
         Alcotest.(check (list int)) "fifo" [ 10; 20 ] (List.rev !got);
         check "empty after drain" 0 (Delete_buffer.size b)))

let test_db_full () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~capacity:3 () in
         Alcotest.(check bool) "1" true (Delete_buffer.push b 1);
         Alcotest.(check bool) "2" true (Delete_buffer.push b 2);
         Alcotest.(check bool) "3" true (Delete_buffer.push b 3);
         Alcotest.(check bool) "full" false (Delete_buffer.push b 4);
         Delete_buffer.drain b (fun _ -> true);
         Alcotest.(check bool) "reusable" true (Delete_buffer.push b 5)))

let test_db_wraparound () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~capacity:3 () in
         for round = 0 to 9 do
           Alcotest.(check bool) "push a" true (Delete_buffer.push b (2 * round));
           Alcotest.(check bool) "push b" true (Delete_buffer.push b ((2 * round) + 1));
           let got = ref [] in
           Delete_buffer.drain b (fun p ->
               got := p :: !got;
               true);
           Alcotest.(check (list int)) "wrap fifo" [ 2 * round; (2 * round) + 1 ] (List.rev !got)
         done))

let test_db_partial_drain () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~capacity:8 () in
         List.iter (fun p -> ignore (Delete_buffer.push b p)) [ 1; 2; 3; 4 ];
         let taken = ref 0 in
         Delete_buffer.drain b (fun _ ->
             incr taken;
             !taken < 3);
         (* the rejected element stays buffered *)
         check "two consumed" 2 (Delete_buffer.size b)))

(* ---------------------------- master buffer ----------------------------- *)

let test_mb_publish_find () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:16 () in
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 56; 8; 8; 120; 32 ];
         Master_buffer.publish_sorted m;
         check "deduped count" 4 (Master_buffer.count m);
         List.iter
           (fun p ->
             Alcotest.(check bool) (Fmt.str "finds %d" p) true (Master_buffer.find m p >= 0))
           [ 8; 32; 56; 120 ];
         check "misses" (-1) (Master_buffer.find m 57);
         let lo, hi = Master_buffer.bounds m in
         check "lo" 8 lo;
         check "hi" 120 hi))

let test_mb_mark_sweep_carry () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:16 () in
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 40; 8; 24 ];
         Master_buffer.publish_sorted m;
         Master_buffer.mark m (Master_buffer.find m 24);
         let freed = ref [] in
         let carry = Master_buffer.sweep m (fun p -> freed := p :: !freed) in
         check "one carried" 1 carry;
         Alcotest.(check (list int)) "unmarked freed" [ 8; 40 ] (List.sort compare !freed);
         (* next phase: carry is re-staged, new appends go on top *)
         ignore (Master_buffer.append m 16);
         Master_buffer.publish_sorted m;
         check "carry + new" 2 (Master_buffer.count m);
         Alcotest.(check bool) "carry still present" true (Master_buffer.find m 24 >= 0)))

let test_mb_overflow () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:2 () in
         Alcotest.(check bool) "1" true (Master_buffer.append m 8);
         Alcotest.(check bool) "2" true (Master_buffer.append m 16);
         Alcotest.(check bool) "full" false (Master_buffer.append m 24)))

let test_mb_marks_reset_on_publish () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:8 () in
         ignore (Master_buffer.append m 8);
         Master_buffer.publish_sorted m;
         Master_buffer.mark m 0;
         ignore (Master_buffer.sweep m (fun _ -> Alcotest.fail "marked must not be freed"));
         Master_buffer.publish_sorted m;
         Alcotest.(check bool) "mark cleared" false (Master_buffer.is_marked m 0);
         let freed = ref 0 in
         ignore (Master_buffer.sweep m (fun _ -> incr freed));
         check "freed on second sweep" 1 !freed))

(* --------------------------- single-thread flow ------------------------- *)

(* Allocate a 3-word node and return its pointer value. *)
let alloc_node () = Ptr.of_addr (Runtime.malloc 3)

let test_unreferenced_nodes_reclaimed () =
  let freed = ref 0 and retired = ref 0 and phases = ref 0 in
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = small_ts () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         (* retire 50 nodes with an 8-slot buffer: several phases must fire *)
         for _ = 1 to 50 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         freed := smr.Smr.counters.freed;
         retired := smr.Smr.counters.retired;
         phases := Threadscan.phases ts));
  ignore (Runtime.start r);
  check "all retired" 50 !retired;
  check "all freed" 50 !freed;
  Alcotest.(check bool) "several phases" true (!phases >= 4);
  check "allocator drained" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_phase_triggered_by_full_buffer () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         for _ = 1 to 8 do
           smr.Smr.retire (alloc_node ())
         done;
         check "buffer not yet overflowed" 0 (Threadscan.phases ts);
         smr.Smr.retire (alloc_node ());
         check "ninth retire forced a collect" 1 (Threadscan.phases ts);
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_stack_reference_pins_node () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         Frame.with_frame 1 (fun fr ->
             let p = alloc_node () in
             Frame.set fr 0 p;
             smr.Smr.retire p;
             (* force phases by retiring garbage *)
             for _ = 1 to 30 do
               smr.Smr.retire (alloc_node ())
             done;
             Alcotest.(check bool) "phases ran" true (Threadscan.phases ts >= 1);
             (* node is still alive: dereferencing it must not fault *)
             ignore (Runtime.read (Ptr.addr p));
             Alcotest.(check bool) "carried over" true (Threadscan.carried_last ts >= 1);
             Frame.set fr 0 0);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "released node reclaimed at flush" 0 (Threadscan.outstanding ts)))

let test_popped_frame_does_not_pin () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         (* hold the pointer in a frame, then pop the frame: the stale word
            beyond sp must NOT pin the node *)
         let p = alloc_node () in
         Frame.with_frame 1 (fun fr -> Frame.set fr 0 p);
         smr.Smr.retire p;
         for _ = 1 to 30 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "nothing pinned" 0 (Threadscan.outstanding ts)))

(* --------------------------- multi-thread flows ------------------------- *)

let test_cross_thread_protection () =
  (* B holds a reference to a node A retires; the node must survive until B
     drops it.  Strict memory turns any wrong free into a failure. *)
  let outstanding_mid = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let cell = Runtime.alloc_region 1 in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 777;
         Runtime.write cell p;
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   Frame.set fr 0 (Runtime.read cell);
                   Runtime.write grabbed 1;
                   while Runtime.read release = 0 do
                     Runtime.yield ()
                   done;
                   (* still dereferenceable after many phases elsewhere *)
                   check "node content intact" 777 (Runtime.read (Ptr.addr (Frame.get fr 0)));
                   Frame.set fr 0 0);
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         (* unlink and retire while B holds it *)
         Runtime.write cell 0;
         smr.Smr.retire p;
         for _ = 1 to 40 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "phases ran while held" true (Threadscan.phases ts >= 2);
         outstanding_mid := Threadscan.outstanding ts;
         Runtime.write release 1;
         Runtime.join holder;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "everything reclaimed in the end" 0 (Threadscan.outstanding ts)));
  Alcotest.(check bool) "held node was outstanding mid-run" true (!outstanding_mid >= 1)

let test_register_only_reference_protected () =
  (* The holder never stores the pointer to its stack: protection must come
     from the register file mirrored at signal delivery. *)
  ignore
    (Runtime.run ~config:{ cfg with reg_words = 512 } (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let cell = Runtime.alloc_region 1 in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 888;
         Runtime.write cell p;
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               let q = Runtime.read cell in
               Runtime.write grabbed 1;
               while Runtime.read release = 0 do
                 Runtime.yield ()
               done;
               check "register-held node intact" 888 (Runtime.read (Ptr.addr q));
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         Runtime.write cell 0;
         smr.Smr.retire p;
         for _ = 1 to 20 do
           smr.Smr.retire (alloc_node ())
         done;
         Runtime.write release 1;
         Runtime.join holder;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_many_threads_churn () =
  let r = Runtime.create { cfg with cores = 4; seed = 5 } in
  let leftover = ref (-1) in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = small_ts ~buffer_size:16 ~max_threads:16 () in
         let smr = Threadscan.smr ts in
         let slots = Runtime.alloc_region 8 in
         smr.Smr.thread_init ();
         let worker i () =
           smr.Smr.thread_init ();
           Frame.with_frame 2 (fun fr ->
               for _ = 1 to 60 do
                 (* publish a fresh node *)
                 let p = alloc_node () in
                 Runtime.write (Ptr.addr p) 1234;
                 Runtime.write (slots + i) p;
                 (* peek at a random neighbour's node *)
                 let q = Runtime.read (slots + Runtime.rand_below 8) in
                 Frame.set fr 0 q;
                 if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                 Frame.set fr 0 0;
                 (* unlink own node and retire it *)
                 let mine = Runtime.read (slots + i) in
                 Runtime.write (slots + i) 0;
                 if not (Ptr.is_null mine) then smr.Smr.retire mine
               done);
           smr.Smr.thread_exit ()
         in
         let ts_list = List.init 8 (fun i -> Runtime.spawn (worker i)) in
         List.iter Runtime.join ts_list;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         leftover := Threadscan.outstanding ts));
  ignore (Runtime.start r);
  (* strict memory already proved no UAF; now prove no leak beyond pins *)
  check "no outstanding nodes" 0 !leftover;
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_determinism_with_reclamation () =
  let snapshot () =
    let r = Runtime.create { cfg with cores = 4; seed = 123 } in
    let phases = ref 0 and signals = ref 0 in
    ignore
      (Runtime.add_thread r (fun () ->
           let ts = small_ts ~buffer_size:16 () in
           let smr = Threadscan.smr ts in
           smr.Smr.thread_init ();
           let workers =
             List.init 6 (fun _ ->
                 Runtime.spawn (fun () ->
                     smr.Smr.thread_init ();
                     for _ = 1 to 100 do
                       smr.Smr.retire (alloc_node ())
                     done;
                     smr.Smr.thread_exit ()))
           in
           List.iter Runtime.join workers;
           smr.Smr.thread_exit ();
           smr.Smr.flush ();
           phases := Threadscan.phases ts;
           signals := Threadscan.signals_sent ts));
    let res = Runtime.start r in
    (!phases, !signals, res.Runtime.elapsed)
  in
  let p1, s1, e1 = snapshot () in
  let p2, s2, e2 = snapshot () in
  check "phases equal" p1 p2;
  check "signals equal" s1 s2;
  check "elapsed equal" e1 e2

let test_signals_scale_with_threads () =
  let signals_for n =
    let out = ref 0 in
    ignore
      (Runtime.run ~config:cfg (fun () ->
           let ts = small_ts ~buffer_size:8 ~max_threads:32 () in
           let smr = Threadscan.smr ts in
           let stop = Runtime.alloc_region 1 in
           let bystanders =
             List.init n (fun _ ->
                 Runtime.spawn (fun () ->
                     smr.Smr.thread_init ();
                     while Runtime.read stop = 0 do
                       Runtime.yield ()
                     done;
                     smr.Smr.thread_exit ()))
           in
           smr.Smr.thread_init ();
           for _ = 1 to 9 do
             smr.Smr.retire (alloc_node ())
           done;
           check "one phase" 1 (Threadscan.phases ts);
           out := Threadscan.signals_sent ts;
           Runtime.write stop 1;
           List.iter Runtime.join bystanders;
           smr.Smr.thread_exit ();
           smr.Smr.flush ()));
    !out
  in
  check "3 bystanders -> 3 signals" 3 (signals_for 3);
  check "7 bystanders -> 7 signals" 7 (signals_for 7)

let test_thread_exit_mid_phase_no_deadlock () =
  (* A registered thread that exits is never waited for. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let t =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Runtime.advance 50;
               smr.Smr.thread_exit ())
         in
         smr.Smr.thread_init ();
         Runtime.join t;
         (* t is gone but was registered and deregistered; collect must not
            hang waiting for it *)
         for _ = 1 to 20 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "phases completed" true (Threadscan.phases ts >= 2);
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

(* ------------------------- heap-block extension ------------------------- *)

let test_heap_block_extension_pins () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         (* private references stored in a heap block, not on the stack *)
         let blk = Runtime.malloc 4 in
         Threadscan.add_heap_block ~start_addr:blk ~len:4;
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 555;
         Runtime.write blk p;
         smr.Smr.retire p;
         for _ = 1 to 30 do
           smr.Smr.retire (alloc_node ())
         done;
         (* the heap-block reference kept it alive *)
         check "alive via heap block" 555 (Runtime.read (Ptr.addr p));
         Runtime.write blk 0;
         Threadscan.remove_heap_block ~start_addr:blk ~len:4;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "freed after deregistration" 0 (Threadscan.outstanding ts);
         Runtime.free blk))

let test_heap_block_without_registration_uaf () =
  (* The same pattern WITHOUT registering the block violates Assumption 1
     and must produce a detectable use-after-free — demonstrating that the
     extension is load-bearing. *)
  let saw_uaf = ref false in
  (try
     ignore
       (Runtime.run ~config:cfg (fun () ->
            let ts = small_ts () in
            let smr = Threadscan.smr ts in
            smr.Smr.thread_init ();
            let blk = Runtime.malloc 4 in
            let noise = Runtime.alloc_region 1 in
            let p = alloc_node () in
            Runtime.write blk p;
            smr.Smr.retire p;
            (* Ordinary register traffic between retires, as any real
               workload has: without it the reclaimer's own register file
               conservatively pins recent pointers. *)
            for _ = 1 to 40 do
              smr.Smr.retire (alloc_node ());
              for _ = 1 to 40 do
                ignore (Runtime.read noise)
              done
            done;
            (* p was reclaimed because nothing scannable held it *)
            ignore (Runtime.read (Ptr.addr (Runtime.read blk)))))
   with Runtime.Thread_failure (_, Mem.Fault (Mem.Uaf_read, _)) -> saw_uaf := true);
  Alcotest.(check bool) "unregistered heap ref is unsafe" true !saw_uaf

(* ------------------------------ help-free ------------------------------- *)

let test_help_free_distributes_work () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~help_free:true ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let stop = Runtime.alloc_region 1 in
         let helpers =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   while Runtime.read stop = 0 do
                     Runtime.yield ()
                   done;
                   smr.Smr.thread_exit ()))
         in
         smr.Smr.thread_init ();
         for _ = 1 to 200 do
           smr.Smr.retire (alloc_node ())
         done;
         Runtime.write stop 1;
         List.iter Runtime.join helpers;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all reclaimed" 0 (Threadscan.outstanding ts);
         Alcotest.(check bool) "scanners freed part of the garbage" true
           (Threadscan.helped_frees ts > 0)));
  ()

let test_help_free_accounting_exact () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = small_ts ~help_free:true ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         for _ = 1 to 123 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "retired" 123 smr.Smr.counters.retired;
         check "freed" 123 smr.Smr.counters.freed));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_released_node_freed_without_flush () =
  (* a carried node must be reclaimed by a later ordinary phase once the
     holder lets go — flush is only for end-of-run stragglers *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         Frame.with_frame 1 (fun fr ->
             let p = alloc_node () in
             Frame.set fr 0 p;
             smr.Smr.retire p;
             for _ = 1 to 20 do
               smr.Smr.retire (alloc_node ())
             done;
             Alcotest.(check bool) "still outstanding while held" true
               (Threadscan.outstanding ts > 0);
             Frame.set fr 0 0);
         (* frame slot cleared: flush registers by reading, then more phases *)
         for _ = 1 to 60 do
           smr.Smr.retire (alloc_node ());
           for _ = 1 to 30 do
             ignore (Runtime.read noise)
           done
         done;
         Alcotest.(check bool) "reclaimed by a later phase, no flush involved" true
           (Threadscan.outstanding ts <= 8);
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_racing_reclaimers_serialize () =
  ignore
    (Runtime.run ~config:{ cfg with seed = 77 } (fun () ->
         let ts = small_ts ~buffer_size:4 ~max_threads:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let ws =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for _ = 1 to 50 do
                     smr.Smr.retire (alloc_node ())
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "accounting exact despite racing reclaimers" 200 smr.Smr.counters.freed;
         Alcotest.(check bool) "contention on the reclaimer lock observed" true
           (Threadscan.full_waits ts > 0)))

let test_unregistered_thread_not_signaled () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let stop = Runtime.alloc_region 1 in
         (* a bystander that never calls thread_init *)
         let bystander =
           Runtime.spawn (fun () ->
               while Runtime.read stop = 0 do
                 Runtime.yield ()
               done)
         in
         smr.Smr.thread_init ();
         for _ = 1 to 9 do
           smr.Smr.retire (alloc_node ())
         done;
         check "phase ran" 1 (Threadscan.phases ts);
         check "nobody to signal" 0 (Threadscan.signals_sent ts);
         Runtime.write stop 1;
         Runtime.join bystander;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_generational_churn_one_core () =
  (* threads come and go while reclamation phases run on a single core:
     registration, deregistration, signal boosting and the ack protocol all
     interleave; strict memory and exact accounting close the case *)
  let r = Runtime.create { cfg with cores = 1; quantum = 3_000; seed = 31 } in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = small_ts ~buffer_size:6 ~max_threads:24 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let cell = Runtime.alloc_region 1 in
         let generation g () =
           smr.Smr.thread_init ();
           Frame.with_frame 1 (fun fr ->
               for _ = 1 to 20 + (3 * g) do
                 let q = Runtime.read cell in
                 Frame.set fr 0 q;
                 if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                 Frame.set fr 0 0;
                 (* exclusive unlink via CAS: exactly one thread retires any
                    given node (the paper's retire-after-unlink contract; a
                    plain read+write pair can double-retire under races) *)
                 let p = alloc_node () in
                 let old = Runtime.read cell in
                 if Runtime.cas cell old p then begin
                   if not (Ptr.is_null old) then smr.Smr.retire old
                 end
                 else Runtime.free (Ptr.addr p)
               done);
           smr.Smr.thread_exit ()
         in
         for g = 0 to 3 do
           let ws = List.init 4 (fun _ -> Runtime.spawn (generation g)) in
           List.iter Runtime.join ws
         done;
         let last = Runtime.read cell in
         Runtime.write cell 0;
         if not (Ptr.is_null last) then smr.Smr.retire last;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         Alcotest.(check bool) "phases ran" true (Threadscan.phases ts >= 3);
         check "exact reclamation across generations" 0 (Threadscan.outstanding ts)));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_false_positive_pins_but_is_safe () =
  (* Assumption 1.3: an arbitrary stack word that happens to equal a node
     pointer is conservatively treated as a reference.  The node survives
     (delayed reclamation), and nothing unsafe happens. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         Frame.with_frame 1 (fun fr ->
             let p = alloc_node () in
             (* store the INTEGER value of the pointer, computed, not loaded:
                to the scan it is indistinguishable from a reference *)
             Frame.set fr 0 (Ptr.addr p * 8);
             smr.Smr.retire p;
             for _ = 1 to 30 do
               smr.Smr.retire (alloc_node ());
               for _ = 1 to 40 do
                 ignore (Runtime.read noise)
               done
             done;
             (* the accidental match kept it alive *)
             ignore (Runtime.read (Ptr.addr p));
             Alcotest.(check bool) "conservatively carried" true
               (Threadscan.outstanding ts >= 1);
             Frame.set fr 0 0);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "reclaimed once the collision was gone" 0 (Threadscan.outstanding ts)))

let test_tagged_pointer_still_matches () =
  (* §4.2: the scan masks the low-order bits, so a mark-tagged copy of a
     pointer still protects the node *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         Frame.with_frame 1 (fun fr ->
             let p = alloc_node () in
             Frame.set fr 0 (Ptr.mark p);
             smr.Smr.retire p;
             for _ = 1 to 30 do
               smr.Smr.retire (alloc_node ());
               for _ = 1 to 40 do
                 ignore (Runtime.read noise)
               done
             done;
             ignore (Runtime.read (Ptr.addr p));
             Frame.set fr 0 0);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "clean in the end" 0 (Threadscan.outstanding ts)))

let test_config_validation () =
  Alcotest.check_raises "bad buffer"
    (Invalid_argument "Threadscan config: buffer_size < 2")
    (fun () -> Config.validate { Config.default with max_threads = 4; buffer_size = 1 });
  Alcotest.check_raises "bad threads"
    (Invalid_argument "Threadscan config: max_threads < 1")
    (fun () -> Config.validate { Config.default with max_threads = 0; buffer_size = 8 })

(* --------------------------- degradation ladder ------------------------- *)

(* Small budgets so the ladder fires inside a unit test.  Takeover and
   backpressure are disabled unless the test is about them, keeping each
   rung observable in isolation. *)
let ladder_ts ?(ack_budget = 2_000) ?(suspect_phases = 2) ?(takeover_steps = 0)
    ?(overflow_after = 0) ?(buffer_size = 8) () =
  Threadscan.create
    ~config:
      {
        Config.default with
        max_threads = 16;
        buffer_size;
        ack_budget;
        suspect_phases;
        takeover_steps;
        overflow_after;
      }
    ()

let test_stalled_thread_blinds_phase () =
  (* Rung 1: a frozen registered thread cannot ack, so the phase exhausts
     its ack budget, goes blind and frees nothing — including the node the
     frozen thread still holds.  On wake-up everything reclaims. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = ladder_ts () in
         let smr = Threadscan.smr ts in
         let stop = Runtime.alloc_region 1 and grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 999;
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   Frame.set fr 0 p;
                   Runtime.write grabbed 1;
                   while Runtime.read stop = 0 do
                     Runtime.advance 10
                   done;
                   Frame.set fr 0 0);
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         Runtime.stall ~cycles:100_000 w;
         smr.Smr.retire p;
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "phase ran" true (Threadscan.phases ts >= 1);
         Alcotest.(check bool) "ack wait timed out" true (Threadscan.ack_timeouts ts >= 1);
         Alcotest.(check bool) "blind phase carried everything it aggregated" true
           (Threadscan.carried_blind ts >= 8);
         check "nothing freed blind" 0 smr.Smr.counters.freed;
         check "held node untouched" 999 (Runtime.read (Ptr.addr p));
         (* wake it up: the pending signal delivers, it acks, and exits *)
         Runtime.advance 120_000;
         Runtime.write stop 1;
         Runtime.join w;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all reclaimed after recovery" 0 (Threadscan.outstanding ts)))

let test_suspect_proxy_scanned_then_recovers () =
  (* Rung 2: after a blind phase the non-acker is a suspect; later phases
     skip signaling it and proxy-scan its frozen stack instead, so garbage
     is freed while its held node is carried.  When it wakes and acks, it
     is cleared as a recovery. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = ladder_ts ~suspect_phases:50 () in
         let smr = Threadscan.smr ts in
         let stop = Runtime.alloc_region 1 and grabbed = Runtime.alloc_region 1 in
         let noise = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 424;
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   Frame.set fr 0 p;
                   Runtime.write grabbed 1;
                   while Runtime.read stop = 0 do
                     Runtime.advance 10
                   done;
                   Frame.set fr 0 0);
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         Runtime.stall ~cycles:400_000 w;
         (* phase 1: blind, w becomes suspect *)
         smr.Smr.retire p;
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "suspected" true (Threadscan.suspected_total ts >= 1);
         (* phase 2: w is a frozen suspect — proxy-scanned, phase not blind *)
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ());
           for _ = 1 to 40 do
             ignore (Runtime.read noise)
           done
         done;
         Alcotest.(check bool) "proxy scans ran" true (Threadscan.proxy_scans ts >= 1);
         Alcotest.(check bool) "garbage freed despite the suspect" true
           (smr.Smr.counters.freed > 0);
         check "proxied stack still pins the node" 424 (Runtime.read (Ptr.addr p));
         (* wake: the pending signal delivers and w acks again *)
         Runtime.advance 500_000;
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ());
           for _ = 1 to 40 do
             ignore (Runtime.read noise)
           done
         done;
         Alcotest.(check bool) "recovery observed" true (Threadscan.recoveries ts >= 1);
         Runtime.write stop 1;
         Runtime.join w;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all reclaimed in the end" 0 (Threadscan.outstanding ts)))

let test_crashed_thread_reaped_buffer_freed () =
  (* Rung 3: a thread that crashes while registered can never ack or
     deregister.  The next phase observes it dead, reaps it, adopts its
     buffered retirements through the normal aggregation path, and frees
     them — a crashed thread's pins are dropped. *)
  let leftover = ref (-1) and reaps = ref 0 and retired = ref 0 and freed = ref 0 in
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = ladder_ts () in
         let smr = Threadscan.smr ts in
         let parked = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               (* three retirements that stay in its SRSW buffer *)
               for _ = 1 to 3 do
                 smr.Smr.retire (alloc_node ())
               done;
               Runtime.write parked 1;
               while true do
                 Runtime.advance 10
               done)
         in
         while Runtime.read parked = 0 do
           Runtime.yield ()
         done;
         Runtime.crash w;
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ());
           for _ = 1 to 40 do
             ignore (Runtime.read noise)
           done
         done;
         reaps := Threadscan.reaps ts;
         Runtime.join w;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         retired := smr.Smr.counters.retired;
         freed := smr.Smr.counters.freed;
         leftover := Threadscan.outstanding ts));
  ignore (Runtime.start r);
  check "reaped exactly once" 1 !reaps;
  check "all 15 retirements accounted" 15 !retired;
  check "all freed, including the dead thread's buffer" 15 !freed;
  check "nothing outstanding" 0 !leftover;
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_takeover_after_reclaimer_crash () =
  (* Rung 4: the reclaimer crashes inside a phase, holding the phase lock.
     A retiring thread watches the heartbeat go silent, wrests the lock,
     bumps the generation and completes reclamation. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = ladder_ts ~takeover_steps:500 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Threadscan.set_inject ts Threadscan.Crash_mid_phase;
               (* the ninth retire starts a phase; the injection kills the
                  reclaimer mid-phase with the lock held *)
               for _ = 1 to 9 do
                 smr.Smr.retire (alloc_node ())
               done)
         in
         Runtime.join w;
         Alcotest.(check bool) "reclaimer died mid-phase" true (Runtime.is_crashed w);
         (* our own retires run into the dead holder and must take over *)
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "lock wrested from the corpse" true (Threadscan.takeovers ts >= 1);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         (* the reclaimer died inside [retire], before its in-flight ninth
            pointer was pushed anywhere: a bounded 1-node leak (never a
            UAF) — the same budget the checker's oracle allows per crash *)
         check "only the in-flight retirement leaks" 1 (Threadscan.outstanding ts)))

let test_overflow_backpressure_bounded () =
  (* Rung 5: with the reclaimer dead and the lock held, a full-buffered
     retirer does not block forever: past [overflow_after] wait rounds it
     parks the pointer on the shared overflow list, which the next live
     phase (here: the flush takeover) adopts and frees. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = ladder_ts ~takeover_steps:2_000 ~overflow_after:4 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Threadscan.set_inject ts Threadscan.Crash_mid_phase;
               for _ = 1 to 9 do
                 smr.Smr.retire (alloc_node ())
               done)
         in
         Runtime.join w;
         (* fill our buffer, then keep retiring against the dead holder:
            backpressure must park instead of spinning forever *)
         let before = Threadscan.overflow_pushes ts in
         for _ = 1 to 12 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "retirements parked under backpressure" true
           (Threadscan.overflow_pushes ts > before);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         (* 1 = the crashed reclaimer's in-flight retirement, as above *)
         check "parked retirements adopted and freed" 1 (Threadscan.outstanding ts)))

let test_thread_exit_races_inflight_collect () =
  (* A registered thread deregisters while a collect phase is mid-flight
     and its signal is still undelivered (delayed in the signal queue).
     The ack wait must release via the registration check — not the
     timeout — and the phase completes normally. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 () in
         let smr = Threadscan.smr ts in
         let ready = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               Runtime.write ready 1;
               (* leave the instant a collect is in flight *)
               while Threadscan.phases ts = 0 do
                 Runtime.advance 5
               done;
               smr.Smr.thread_exit ())
         in
         while Runtime.read ready = 0 do
           Runtime.yield ()
         done;
         (* its signal will hang in the air long past its exit *)
         Runtime.delay_signals w 100_000;
         for _ = 1 to 9 do
           smr.Smr.retire (alloc_node ())
         done;
         Runtime.join w;
         check "phase completed" 1 (Threadscan.phases ts);
         check "released by deregistration, not the budget" 0 (Threadscan.ack_timeouts ts);
         check "phase was not blind" 0 (Threadscan.carried_blind ts);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "clean" 0 (Threadscan.outstanding ts)))

(* ------------------------------ adversarial ----------------------------- *)

let prop_random_hold_release_safe =
  QCheck.Test.make ~name:"random hold/release churn is UAF-free and leak-free" ~count:25
    QCheck.(pair small_nat (int_range 2 6))
    (fun (seed, nthreads) ->
      let r = Runtime.create { cfg with cores = 2; seed } in
      let ok = ref false in
      ignore
        (Runtime.add_thread r (fun () ->
             let ts = small_ts ~buffer_size:8 ~max_threads:(nthreads + 2) () in
             let smr = Threadscan.smr ts in
             let slots = Runtime.alloc_region nthreads in
             smr.Smr.thread_init ();
             let worker i () =
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   for _ = 1 to 40 do
                     match Runtime.rand_below 3 with
                     | 0 ->
                         (* publish fresh node *)
                         let old = Runtime.read (slots + i) in
                         let p = alloc_node () in
                         Runtime.write (slots + i) p;
                         if not (Ptr.is_null old) then smr.Smr.retire old
                     | 1 ->
                         (* hold and dereference a random node *)
                         let q = Runtime.read (slots + Runtime.rand_below nthreads) in
                         Frame.set fr 0 q;
                         if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                         Frame.set fr 0 0
                     | _ ->
                         (* unlink + retire own node *)
                         let mine = Runtime.read (slots + i) in
                         Runtime.write (slots + i) 0;
                         if not (Ptr.is_null mine) then smr.Smr.retire mine
                   done);
               (* drop remaining published node *)
               let mine = Runtime.read (slots + i) in
               Runtime.write (slots + i) 0;
               if not (Ptr.is_null mine) then smr.Smr.retire mine;
               smr.Smr.thread_exit ()
             in
             let ws = List.init nthreads (fun i -> Runtime.spawn (worker i)) in
             List.iter Runtime.join ws;
             smr.Smr.thread_exit ();
             smr.Smr.flush ();
             ok := Threadscan.outstanding ts = 0));
      ignore (Runtime.start r);
      !ok && Alloc.live_blocks (Runtime.alloc r) = 0)

(* ------------------------------- pipeline ------------------------------- *)

let pipeline_ts ?(free_chunk = 2) ?(buffer_size = 8) ?(max_threads = 16) () =
  Threadscan.create
    ~config:
      {
        Config.default with
        max_threads;
        buffer_size;
        help_free = true;
        collect_merge = true;
        scan_filter = true;
        free_chunk;
      }
    ()

let test_db_seal_roundtrip () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~sealed_runs:true ~capacity:4 () in
         List.iter (fun p -> ignore (Delete_buffer.push b p)) [ 9; 3; 7; 5 ];
         Alcotest.(check bool) "full" false (Delete_buffer.push b 11);
         Alcotest.(check bool) "seal" true (Delete_buffer.seal b);
         Alcotest.(check bool) "push blocked while sealed" false (Delete_buffer.push b 11);
         let got = ref [] in
         Delete_buffer.drain_phase b
           ~sealed:(fun ~len ~read ->
             for i = 0 to len - 1 do
               got := read i :: !got
             done;
             true)
           ~loose:(fun _ -> Alcotest.fail "window was sealed, nothing is loose");
         Alcotest.(check (list int)) "run is sorted" [ 3; 5; 7; 9 ] (List.rev !got);
         Alcotest.(check bool) "reopened" true (Delete_buffer.push b 11);
         check "window consumed" 1 (Delete_buffer.size b)))

let test_db_seal_preconditions () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let legacy = Delete_buffer.create ~capacity:4 () in
         ignore (Delete_buffer.push legacy 8);
         Alcotest.(check bool) "legacy buffer never seals" false (Delete_buffer.seal legacy);
         let b = Delete_buffer.create ~sealed_runs:true ~capacity:4 () in
         ignore (Delete_buffer.push b 8);
         Alcotest.(check bool) "not full, no seal" false (Delete_buffer.seal b);
         Alcotest.(check bool) "still open" true (Delete_buffer.push b 16)))

let test_db_sealed_run_kept_without_space () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~sealed_runs:true ~capacity:3 () in
         List.iter (fun p -> ignore (Delete_buffer.push b p)) [ 24; 8; 16 ];
         Alcotest.(check bool) "seal" true (Delete_buffer.seal b);
         (* the master had no room: the run must survive for the next phase *)
         Delete_buffer.drain_phase b
           ~sealed:(fun ~len:_ ~read:_ -> false)
           ~loose:(fun _ -> Alcotest.fail "sealed run must not fall through to loose");
         Alcotest.(check bool) "still claimed" false (Delete_buffer.push b 32);
         let got = ref [] in
         Delete_buffer.drain_phase b
           ~sealed:(fun ~len ~read ->
             for i = 0 to len - 1 do
               got := read i :: !got
             done;
             true)
           ~loose:(fun _ -> Alcotest.fail "still sealed");
         Alcotest.(check (list int)) "run intact next phase" [ 8; 16; 24 ] (List.rev !got)))

let test_db_loose_drain_when_unsealed () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Delete_buffer.create ~sealed_runs:true ~capacity:8 () in
         List.iter (fun p -> ignore (Delete_buffer.push b p)) [ 40; 8 ];
         let got = ref [] in
         Delete_buffer.drain_phase b
           ~sealed:(fun ~len:_ ~read:_ -> Alcotest.fail "nothing was sealed")
           ~loose:(fun p ->
             got := p :: !got;
             true);
         Alcotest.(check (list int)) "loose fifo, unsorted" [ 40; 8 ] (List.rev !got);
         check "drained" 0 (Delete_buffer.size b)))

let test_mb_publish_merged_equiv () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:32 () in
         (* staged layout: loose 50 | run (8 16 24) | loose 16 | run (8 40) *)
         ignore (Master_buffer.append m 50);
         let s1 = Master_buffer.staged_pos m in
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 8; 16; 24 ];
         ignore (Master_buffer.append m 16);
         let s2 = Master_buffer.staged_pos m in
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 8; 40 ];
         Master_buffer.publish_merged m ~runs:[ (s1, 3); (s2, 2) ];
         check "count = sort|dedup of the union" 5 (Master_buffer.count m);
         List.iteri
           (fun i want -> check (Fmt.str "entry %d" i) want (Master_buffer.entry m i))
           [ 8; 16; 24; 40; 50 ]))

let test_mb_merged_carry_not_resorted () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~capacity:32 () in
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 40; 8; 24 ];
         Master_buffer.publish_sorted m;
         Master_buffer.mark m (Master_buffer.find m 24);
         Master_buffer.mark m (Master_buffer.find m 40);
         let carry = Master_buffer.sweep m (fun _ -> ()) in
         check "two carried" 2 carry;
         (* merged publish treats the carry as a pre-sorted run; new loose
            entries interleave correctly around it *)
         List.iter (fun p -> ignore (Master_buffer.append m p)) [ 48; 16 ];
         Master_buffer.publish_merged m ~runs:[];
         check "carry + loose" 4 (Master_buffer.count m);
         List.iteri
           (fun i want -> check (Fmt.str "entry %d" i) want (Master_buffer.entry m i))
           [ 16; 24; 40; 48 ]))

let test_mb_filter_no_false_negatives () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let m = Master_buffer.create ~filter:true ~capacity:64 () in
         for i = 0 to 39 do
           ignore (Master_buffer.append m (((i * 2654435761) land 0xFFFF) lor 8))
         done;
         Master_buffer.publish_sorted m;
         let assert_members () =
           let mask = Master_buffer.filter_mask m in
           Alcotest.(check bool) "filter published" true (mask >= 0);
           for i = 0 to Master_buffer.count m - 1 do
             Alcotest.(check bool)
               (Fmt.str "published entry %d passes" i)
               true
               (Master_buffer.filter_test m ~mask (Master_buffer.entry m i))
           done
         in
         assert_members ();
         (* the filter is rebuilt per publish over the surviving prefix *)
         Master_buffer.mark m 0;
         ignore (Master_buffer.sweep m (fun _ -> ()));
         ignore (Master_buffer.append m 123456);
         Master_buffer.publish_merged m ~runs:[];
         assert_members ()))

let test_pipeline_churn_end_to_end () =
  let r = Runtime.create { cfg with cores = 4; seed = 5 } in
  let leftover = ref (-1) and seals = ref 0 and merged = ref 0 and phases = ref 0 in
  ignore
    (Runtime.add_thread r (fun () ->
         let ts = pipeline_ts () in
         let smr = Threadscan.smr ts in
         let slots = Runtime.alloc_region 8 in
         smr.Smr.thread_init ();
         let worker i () =
           smr.Smr.thread_init ();
           Frame.with_frame 2 (fun fr ->
               for _ = 1 to 60 do
                 let p = alloc_node () in
                 Runtime.write (Ptr.addr p) 1234;
                 Runtime.write (slots + i) p;
                 let q = Runtime.read (slots + Runtime.rand_below 8) in
                 Frame.set fr 0 q;
                 if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                 Frame.set fr 0 0;
                 let mine = Runtime.read (slots + i) in
                 Runtime.write (slots + i) 0;
                 if not (Ptr.is_null mine) then smr.Smr.retire mine
               done);
           smr.Smr.thread_exit ()
         in
         let ts_list = List.init 8 (fun i -> Runtime.spawn (worker i)) in
         List.iter Runtime.join ts_list;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         leftover := Threadscan.outstanding ts;
         seals := Threadscan.sealed_runs ts;
         merged := Threadscan.merged_runs ts;
         phases := Threadscan.phases ts));
  ignore (Runtime.start r);
  (* strict memory already proved no UAF; the pipeline must also leak
     nothing and have actually exercised its stages *)
  check "no outstanding nodes" 0 !leftover;
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r));
  Alcotest.(check bool) "phases ran" true (!phases > 0);
  Alcotest.(check bool) "windows were sealed" true (!seals > 0);
  Alcotest.(check bool) "sealed runs were merged" true (!merged > 0)

let test_pipeline_deterministic () =
  let snapshot () =
    let r = Runtime.create { cfg with cores = 4; seed = 123 } in
    let phases = ref 0 and signals = ref 0 in
    ignore
      (Runtime.add_thread r (fun () ->
           let ts = pipeline_ts ~buffer_size:16 () in
           let smr = Threadscan.smr ts in
           smr.Smr.thread_init ();
           let workers =
             List.init 6 (fun _ ->
                 Runtime.spawn (fun () ->
                     smr.Smr.thread_init ();
                     for _ = 1 to 100 do
                       smr.Smr.retire (alloc_node ())
                     done;
                     smr.Smr.thread_exit ()))
           in
           List.iter Runtime.join workers;
           smr.Smr.thread_exit ();
           smr.Smr.flush ();
           phases := Threadscan.phases ts;
           signals := Threadscan.signals_sent ts));
    let res = Runtime.start r in
    (!phases, !signals, res.Runtime.elapsed)
  in
  let p1, s1, e1 = snapshot () in
  let p2, s2, e2 = snapshot () in
  check "phases equal" p1 p2;
  check "signals equal" s1 s2;
  check "elapsed equal" e1 e2

let test_adaptive_buffers_scale_with_threads () =
  let phases_after ~adaptive n =
    let phases = ref (-1) in
    ignore
      (Runtime.run ~config:cfg (fun () ->
           let ts =
             Threadscan.create
               ~config:
                 {
                   Config.default with
                   max_threads = 16;
                   buffer_size = 4;
                   adaptive_buffers = adaptive;
                 }
               ()
           in
           let smr = Threadscan.smr ts in
           smr.Smr.thread_init ();
           for _ = 1 to n do
             smr.Smr.retire (alloc_node ())
           done;
           phases := Threadscan.phases ts;
           smr.Smr.thread_exit ();
           smr.Smr.flush ()));
    !phases
  in
  (* Adaptive sizing grows the buffer to 4 x max_threads = 64, so 32
     retirements fit without a phase; the same config without the knob
     overflows its 4-slot buffer repeatedly.  Explicit sizes are never
     shrunk: a large buffer_size behaves the same either way. *)
  Alcotest.(check bool)
    "legacy 4-slot buffer phases repeatedly" true
    (phases_after ~adaptive:false 32 >= 4);
  check "adaptive buffer absorbs burst" 0 (phases_after ~adaptive:true 32);
  check "adaptive buffer still bounded" 1 (phases_after ~adaptive:true 65)

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "threadscan"
    [
      ( "delete_buffer",
        [
          Alcotest.test_case "push/drain fifo" `Quick test_db_push_drain;
          Alcotest.test_case "full" `Quick test_db_full;
          Alcotest.test_case "wraparound" `Quick test_db_wraparound;
          Alcotest.test_case "partial drain" `Quick test_db_partial_drain;
        ] );
      ( "master_buffer",
        [
          Alcotest.test_case "publish + find" `Quick test_mb_publish_find;
          Alcotest.test_case "mark/sweep/carry" `Quick test_mb_mark_sweep_carry;
          Alcotest.test_case "overflow" `Quick test_mb_overflow;
          Alcotest.test_case "marks reset on publish" `Quick test_mb_marks_reset_on_publish;
        ] );
      ( "single-thread",
        [
          Alcotest.test_case "unreferenced nodes reclaimed" `Quick
            test_unreferenced_nodes_reclaimed;
          Alcotest.test_case "phase on full buffer" `Quick test_phase_triggered_by_full_buffer;
          Alcotest.test_case "stack ref pins" `Quick test_stack_reference_pins_node;
          Alcotest.test_case "popped frame does not pin" `Quick test_popped_frame_does_not_pin;
        ] );
      ( "multi-thread",
        [
          Alcotest.test_case "cross-thread protection" `Quick test_cross_thread_protection;
          Alcotest.test_case "register-only ref protected" `Quick
            test_register_only_reference_protected;
          Alcotest.test_case "8-thread churn" `Quick test_many_threads_churn;
          Alcotest.test_case "deterministic" `Quick test_determinism_with_reclamation;
          Alcotest.test_case "signals scale with threads" `Quick test_signals_scale_with_threads;
          Alcotest.test_case "exit mid-use no deadlock" `Quick
            test_thread_exit_mid_phase_no_deadlock;
        ] );
      ( "heap-blocks",
        [
          Alcotest.test_case "registered block pins" `Quick test_heap_block_extension_pins;
          Alcotest.test_case "unregistered block is unsafe" `Quick
            test_heap_block_without_registration_uaf;
        ] );
      ( "help-free",
        [
          Alcotest.test_case "work distributed" `Quick test_help_free_distributes_work;
          Alcotest.test_case "accounting exact" `Quick test_help_free_accounting_exact;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "release frees without flush" `Quick
            test_released_node_freed_without_flush;
          Alcotest.test_case "racing reclaimers serialize" `Quick
            test_racing_reclaimers_serialize;
          Alcotest.test_case "unregistered thread not signaled" `Quick
            test_unregistered_thread_not_signaled;
          Alcotest.test_case "generational churn on one core" `Quick
            test_generational_churn_one_core;
          Alcotest.test_case "false positive pins safely" `Quick
            test_false_positive_pins_but_is_safe;
          Alcotest.test_case "tagged pointer still matches" `Quick
            test_tagged_pointer_still_matches;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "stalled thread blinds the phase" `Quick
            test_stalled_thread_blinds_phase;
          Alcotest.test_case "suspect proxy-scanned, then recovers" `Quick
            test_suspect_proxy_scanned_then_recovers;
          Alcotest.test_case "crashed thread reaped, buffer freed" `Quick
            test_crashed_thread_reaped_buffer_freed;
          Alcotest.test_case "takeover after reclaimer crash" `Quick
            test_takeover_after_reclaimer_crash;
          Alcotest.test_case "overflow backpressure is bounded" `Quick
            test_overflow_backpressure_bounded;
          Alcotest.test_case "thread_exit races in-flight collect" `Quick
            test_thread_exit_races_inflight_collect;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "seal roundtrip" `Quick test_db_seal_roundtrip;
          Alcotest.test_case "seal preconditions" `Quick test_db_seal_preconditions;
          Alcotest.test_case "sealed run kept without space" `Quick
            test_db_sealed_run_kept_without_space;
          Alcotest.test_case "loose drain when unsealed" `Quick test_db_loose_drain_when_unsealed;
          Alcotest.test_case "merged publish = sort|dedup" `Quick test_mb_publish_merged_equiv;
          Alcotest.test_case "carry merges without re-sort" `Quick
            test_mb_merged_carry_not_resorted;
          Alcotest.test_case "filter never false-negatives" `Quick
            test_mb_filter_no_false_negatives;
          Alcotest.test_case "churn end-to-end" `Quick test_pipeline_churn_end_to_end;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "adaptive buffers scale with threads" `Quick
            test_adaptive_buffers_scale_with_threads;
        ] );
      ("adversarial", [ qt prop_random_hold_release_safe ]);
    ]
