module Runtime = Ts_sim.Runtime
module Ptr = Ts_umem.Ptr
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr
module Leaky = Ts_reclaim.Leaky
module Hazard = Ts_reclaim.Hazard
module Epoch = Ts_reclaim.Epoch
module Set_intf = Ts_ds.Set_intf
module Michael_list = Ts_ds.Michael_list
module Hash_table = Ts_ds.Hash_table
module Skiplist = Ts_ds.Skiplist
module Lazy_list = Ts_ds.Lazy_list
module Split_hash = Ts_ds.Split_hash

let check = Alcotest.(check int)

let cfg = Runtime.default_config

let sl_height = 8

(* scheme constructors, parameterised by how many protection slots the
   structure needs (hazard pointers) *)
let scheme_of ~slots ~max_threads = function
  | "leaky" -> Leaky.create ()
  | "threadscan" ->
      Threadscan.smr
        (Threadscan.create
           ~config:{ Threadscan.Config.default with max_threads; buffer_size = 16 }
           ())
  | "hazard" -> Hazard.create ~slots ~threshold_extra:16 ~max_threads ()
  | "epoch" -> Epoch.create ~batch:32 ~max_threads ()
  | s -> invalid_arg s

let ds_of ~smr = function
  | "list" -> Michael_list.create ~smr ()
  | "hash" -> Hash_table.create ~smr ~buckets:16 ()
  | "skip" -> Skiplist.create ~smr ~max_height:sl_height ()
  | "lazy" -> Lazy_list.create ~smr ()
  | "split" -> Split_hash.set (Split_hash.create ~smr ~max_buckets:64 ())
  | s -> invalid_arg s

let slots_for = function
  | "skip" -> Skiplist.hazard_slots ~max_height:sl_height
  | _ -> 3

let all_ds = [ "list"; "hash"; "skip"; "lazy"; "split" ]

let all_schemes = [ "leaky"; "threadscan"; "hazard"; "epoch" ]

(* ----------------------------- sequential ------------------------------- *)

let sequential_basic ds_name () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let ds = ds_of ~smr ds_name in
         Alcotest.(check bool) "insert new" true (ds.Set_intf.insert 5 50);
         Alcotest.(check bool) "insert dup" false (ds.Set_intf.insert 5 51);
         Alcotest.(check bool) "contains" true (ds.Set_intf.contains 5);
         Alcotest.(check bool) "not contains" false (ds.Set_intf.contains 6);
         Alcotest.(check bool) "insert more" true (ds.Set_intf.insert 3 30);
         Alcotest.(check bool) "insert more" true (ds.Set_intf.insert 9 90);
         Alcotest.(check (list (pair int int)))
           "sorted contents"
           [ (3, 30); (5, 50); (9, 90) ]
           (ds.Set_intf.to_list ());
         Alcotest.(check bool) "remove hit" true (ds.Set_intf.remove 5);
         Alcotest.(check bool) "remove miss" false (ds.Set_intf.remove 5);
         Alcotest.(check bool) "gone" false (ds.Set_intf.contains 5);
         ds.Set_intf.check ();
         check "size" 2 (Set_intf.size ds)))

let sequential_model ds_name =
  QCheck.Test.make
    ~name:(Fmt.str "%s matches a sequential set model" ds_name)
    ~count:30
    QCheck.(list (pair (int_bound 2) (int_bound 40)))
    (fun ops ->
      let ok = ref true in
      ignore
        (Runtime.run ~config:cfg (fun () ->
             let smr = Leaky.create () in
             smr.Smr.thread_init ();
             let ds = ds_of ~smr ds_name in
             let model = Hashtbl.create 16 in
             List.iter
               (fun (op, key) ->
                 match op with
                 | 0 ->
                     let expect = not (Hashtbl.mem model key) in
                     if expect then Hashtbl.replace model key (key * 10);
                     if ds.Set_intf.insert key (key * 10) <> expect then ok := false
                 | 1 ->
                     let expect = Hashtbl.mem model key in
                     Hashtbl.remove model key;
                     if ds.Set_intf.remove key <> expect then ok := false
                 | _ -> if ds.Set_intf.contains key <> Hashtbl.mem model key then ok := false)
               ops;
             ds.Set_intf.check ();
             let expected =
               Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
             in
             if ds.Set_intf.to_list () <> expected then ok := false));
      !ok)

(* ----------------------------- concurrent ------------------------------- *)

(* The master invariant: final size = successful inserts - successful
   removes, contents are sorted and structurally valid, and — for the
   reclaiming schemes — the allocator holds exactly the blocks the
   structure still references after flush. *)
let churn ~ds_name ~scheme_name ~threads ~ops ~seed () =
  let r = Runtime.create { cfg with cores = 4; seed } in
  let baseline = ref 0 in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = scheme_of ~slots:(slots_for ds_name) ~max_threads:(threads + 2) scheme_name in
         smr.Smr.thread_init ();
         baseline := Alloc.live_blocks (Runtime.alloc r);
         let ds = ds_of ~smr ds_name in
         let sentinel_blocks = Alloc.live_blocks (Runtime.alloc r) - !baseline in
         let inserts = Array.make threads 0 in
         let removes = Array.make threads 0 in
         let key_range = 32 in
         let worker i () =
           smr.Smr.thread_init ();
           for _ = 1 to ops do
             let key = Runtime.rand_below key_range in
             match Runtime.rand_below 10 with
             | 0 | 1 -> if ds.Set_intf.insert key key then inserts.(i) <- inserts.(i) + 1
             | 2 | 3 -> if ds.Set_intf.remove key then removes.(i) <- removes.(i) + 1
             | _ -> ignore (ds.Set_intf.contains key)
           done;
           smr.Smr.thread_exit ()
         in
         let ws = List.init threads (fun i -> Runtime.spawn (worker i)) in
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         ds.Set_intf.check ();
         let net =
           Array.fold_left ( + ) 0 inserts - Array.fold_left ( + ) 0 removes
         in
         check (Fmt.str "%s/%s net size" ds_name scheme_name) net (Set_intf.size ds);
         if scheme_name <> "leaky" then begin
           (* every retired node must be freed *)
           check
             (Fmt.str "%s/%s retired all reclaimed" ds_name scheme_name)
             0
             (smr.Smr.counters.retired - smr.Smr.counters.freed);
           (* and for structures with a fixed set of immortal nodes the
              allocator-level accounting is exact (split-hash installs
              bucket dummies lazily, so its immortal set grows) *)
           if ds_name <> "split" then
             check
               (Fmt.str "%s/%s no leaks" ds_name scheme_name)
               (Set_intf.size ds + sentinel_blocks)
               (Alloc.live_blocks (Runtime.alloc r) - !baseline)
         end));
  ignore (Runtime.start r)

let churn_cases =
  List.concat_map
    (fun ds ->
      List.map
        (fun scheme ->
          Alcotest.test_case (Fmt.str "churn %s + %s" ds scheme) `Quick
            (churn ~ds_name:ds ~scheme_name:scheme ~threads:6 ~ops:80 ~seed:42))
        all_schemes)
    all_ds

(* disjoint-range concurrent inserts: everything must land *)
let test_disjoint_inserts ds_name () =
  ignore
    (Runtime.run ~config:{ cfg with cores = 4 } (fun () ->
         let smr = scheme_of ~slots:(slots_for ds_name) ~max_threads:8 "threadscan" in
         smr.Smr.thread_init ();
         let ds = ds_of ~smr ds_name in
         let per = 40 in
         let ws =
           List.init 4 (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for k = i * per to (i * per) + per - 1 do
                     if not (ds.Set_intf.insert k k) then failwith "disjoint insert failed"
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         ds.Set_intf.check ();
         check "all inserted" (4 * per) (Set_intf.size ds);
         for k = 0 to (4 * per) - 1 do
           if not (ds.Set_intf.contains k) then failwith "missing key"
         done))

(* every key removed exactly once even when racing *)
let test_racing_removes ds_name () =
  ignore
    (Runtime.run ~config:{ cfg with cores = 4; seed = 3 } (fun () ->
         let smr = scheme_of ~slots:(slots_for ds_name) ~max_threads:8 "threadscan" in
         smr.Smr.thread_init ();
         let ds = ds_of ~smr ds_name in
         let n = 60 in
         for k = 0 to n - 1 do
           ignore (ds.Set_intf.insert k k)
         done;
         let wins = Runtime.alloc_region 1 in
         let ws =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for k = 0 to n - 1 do
                     if ds.Set_intf.remove k then ignore (Runtime.faa wins 1)
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "each key removed exactly once" n (Runtime.read wins);
         check "empty" 0 (Set_intf.size ds);
         ds.Set_intf.check ()))

(* the paper's scenario: unsynchronized readers traverse while removers
   reclaim under them; strict memory proves no reader ever touches freed
   memory *)
let test_readers_vs_removers ds_name scheme_name () =
  ignore
    (Runtime.run ~config:{ cfg with cores = 4; seed = 17 } (fun () ->
         let smr = scheme_of ~slots:(slots_for ds_name) ~max_threads:10 scheme_name in
         smr.Smr.thread_init ();
         let ds = ds_of ~smr ds_name in
         let n = 48 in
         for k = 0 to n - 1 do
           ignore (ds.Set_intf.insert k k)
         done;
         let readers =
           List.init 4 (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for round = 0 to 5 do
                     for k = 0 to n - 1 do
                       ignore (ds.Set_intf.contains ((k + (i * round)) mod n))
                     done
                   done;
                   smr.Smr.thread_exit ()))
         in
         let removers =
           List.init 2 (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   let start = i * (n / 2) in
                   for k = start to start + (n / 2) - 1 do
                     ignore (ds.Set_intf.remove k);
                     ignore (ds.Set_intf.insert k (k * 2));
                     ignore (ds.Set_intf.remove k)
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join readers;
         List.iter Runtime.join removers;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         ds.Set_intf.check ();
         check "drained" 0 (Set_intf.size ds)))

(* ------------------------- structure specifics -------------------------- *)

let test_list_padding () =
  check "default node is 3 words" 3 (Michael_list.node_words ~padding:0);
  check "paper nodes are 22 words" 22 (Michael_list.node_words ~padding:19)

let test_hash_distribution () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let ds = ds_of ~smr "hash" in
         for k = 0 to 255 do
           ignore (ds.Set_intf.insert k k)
         done;
         ds.Set_intf.check ();
         check "all present" 256 (Set_intf.size ds)))

let test_skiplist_levels () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let ds = Skiplist.create ~smr ~max_height:6 () in
         for k = 0 to 199 do
           ignore (ds.Set_intf.insert k k)
         done;
         for k = 0 to 199 do
           if k mod 3 = 0 then ignore (ds.Set_intf.remove k)
         done;
         ds.Set_intf.check ();
         check "size" (200 - 67) (Set_intf.size ds)))

(* ------------------------------ split hash ------------------------------ *)

let test_split_hash_grows () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let sh = Split_hash.create ~smr ~max_buckets:64 ~load_factor:2 () in
         let ds = Split_hash.set sh in
         check "starts with two buckets" 2 (Split_hash.bucket_count sh);
         for k = 0 to 99 do
           ignore (ds.Set_intf.insert k k)
         done;
         Alcotest.(check bool) "table doubled repeatedly" true
           (Split_hash.bucket_count sh >= 32);
         check "maintained size" 100 (Split_hash.size sh);
         check "to_list agrees" 100 (Set_intf.size ds);
         ds.Set_intf.check ()))

let test_split_hash_dummies_immortal () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr =
           Threadscan.smr
             (Threadscan.create
                ~config:{ Threadscan.Config.default with max_threads = 4; buffer_size = 8 }
                ())
         in
         smr.Smr.thread_init ();
         let sh = Split_hash.create ~smr ~max_buckets:32 ~load_factor:2 () in
         let ds = Split_hash.set sh in
         for k = 0 to 63 do
           ignore (ds.Set_intf.insert k k)
         done;
         for k = 0 to 63 do
           ignore (ds.Set_intf.remove k)
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all elements reclaimed" 0 (smr.Smr.counters.retired - smr.Smr.counters.freed);
         check "empty" 0 (Set_intf.size ds);
         (* the dummy chain survives reclamation: reusable immediately *)
         Alcotest.(check bool) "reinsert works" true (ds.Set_intf.insert 7 7);
         ds.Set_intf.check ()));
  ignore (Runtime.start r)

let test_split_hash_key_bounds () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let ds = Split_hash.set (Split_hash.create ~smr ()) in
         Alcotest.(check bool) "max key ok" true (ds.Set_intf.insert Split_hash.max_key 1);
         Alcotest.check_raises "oversized key rejected"
           (Invalid_argument "Split_hash: key out of range") (fun () ->
             ignore (ds.Set_intf.insert (Split_hash.max_key + 1) 1))))

module Priority_queue = Ts_ds.Priority_queue

let test_pq_sequential_order () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let pq = Priority_queue.create ~smr () in
         List.iter
           (fun p -> ignore (Priority_queue.insert pq ~priority:p ~value:(p * 2)))
           [ 7; 3; 9; 1; 5 ];
         Alcotest.(check (option (pair int int))) "peek" (Some (1, 2)) (Priority_queue.peek_min pq);
         let order = ref [] in
         let rec drain () =
           match Priority_queue.pop_min pq with
           | Some (p, _) ->
               order := p :: !order;
               drain ()
           | None -> ()
         in
         drain ();
         Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7; 9 ] (List.rev !order);
         Alcotest.(check bool) "empty" true (Priority_queue.is_empty pq)))

let test_pq_duplicate_priority_rejected () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let pq = Priority_queue.create ~smr () in
         Alcotest.(check bool) "first" true (Priority_queue.insert pq ~priority:4 ~value:1);
         Alcotest.(check bool) "dup" false (Priority_queue.insert pq ~priority:4 ~value:2)))

let test_pq_concurrent_unique_pops () =
  (* every inserted element is popped exactly once, and reclamation of the
     popped nodes is exact *)
  ignore
    (Runtime.run ~config:{ cfg with cores = 4; seed = 21 } (fun () ->
         let smr = scheme_of ~slots:3 ~max_threads:12 "threadscan" in
         smr.Smr.thread_init ();
         let pq = Priority_queue.create ~smr () in
         let n = 300 in
         for p = 0 to n - 1 do
           ignore (Priority_queue.insert pq ~priority:p ~value:p)
         done;
         let popped = Runtime.alloc_region 1 in
         let seen = Runtime.alloc_region n in
         let ws =
           List.init 6 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   let continue_ = ref true in
                   while !continue_ do
                     match Priority_queue.pop_min pq with
                     | Some (p, v) ->
                         check "payload follows priority" p v;
                         ignore (Runtime.faa (seen + p) 1);
                         ignore (Runtime.faa popped 1)
                     | None -> continue_ := false
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join ws;
         check "all popped" n (Runtime.read popped);
         for p = 0 to n - 1 do
           check "popped exactly once" 1 (Runtime.read (seen + p))
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all reclaimed" 0 (smr.Smr.counters.retired - smr.Smr.counters.freed)))

let prop_pq_matches_sorted_model =
  QCheck.Test.make ~name:"priority queue drains in sorted order" ~count:50
    QCheck.(list small_nat)
    (fun priorities ->
      let out = ref [] in
      ignore
        (Runtime.run ~config:cfg (fun () ->
             let smr = Leaky.create () in
             smr.Smr.thread_init ();
             let pq = Priority_queue.create ~smr () in
             List.iter (fun p -> ignore (Priority_queue.insert pq ~priority:p ~value:p)) priorities;
             let rec drain () =
               match Priority_queue.pop_min pq with
               | Some (p, _) ->
                   out := p :: !out;
                   drain ()
               | None -> ()
             in
             drain ()));
      let expected = List.sort_uniq compare priorities in
      List.rev !out = expected)

let test_skiplist_sentinel_safety () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let ds = Skiplist.create ~smr ~max_height:4 () in
         (* operations on an empty structure touch only sentinels *)
         Alcotest.(check bool) "contains on empty" false (ds.Set_intf.contains 1);
         Alcotest.(check bool) "remove on empty" false (ds.Set_intf.remove 1);
         ds.Set_intf.check ()))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ts_ds"
    [
      ( "sequential",
        List.map
          (fun ds -> Alcotest.test_case (Fmt.str "%s basics" ds) `Quick (sequential_basic ds))
          all_ds
        @ List.map (fun ds -> qt (sequential_model ds)) all_ds );
      ("churn", churn_cases);
      ( "concurrent",
        List.map
          (fun ds ->
            Alcotest.test_case (Fmt.str "%s disjoint inserts" ds) `Quick
              (test_disjoint_inserts ds))
          all_ds
        @ List.map
            (fun ds ->
              Alcotest.test_case (Fmt.str "%s racing removes" ds) `Quick
                (test_racing_removes ds))
            all_ds
        @ List.concat_map
            (fun ds ->
              List.map
                (fun scheme ->
                  Alcotest.test_case
                    (Fmt.str "%s readers vs removers (%s)" ds scheme)
                    `Quick
                    (test_readers_vs_removers ds scheme))
                [ "threadscan"; "hazard"; "epoch" ])
            all_ds );
      ( "specifics",
        [
          Alcotest.test_case "list padding" `Quick test_list_padding;
          Alcotest.test_case "hash distribution" `Quick test_hash_distribution;
          Alcotest.test_case "skiplist levels" `Quick test_skiplist_levels;
          Alcotest.test_case "skiplist sentinels" `Quick test_skiplist_sentinel_safety;
        ] );
      ( "split-hash",
        [
          Alcotest.test_case "grows" `Quick test_split_hash_grows;
          Alcotest.test_case "dummies immortal" `Quick test_split_hash_dummies_immortal;
          Alcotest.test_case "key bounds" `Quick test_split_hash_key_bounds;
        ] );
      ( "priority-queue",
        [
          Alcotest.test_case "sequential order" `Quick test_pq_sequential_order;
          Alcotest.test_case "duplicate priority" `Quick test_pq_duplicate_priority_rejected;
          Alcotest.test_case "concurrent unique pops" `Quick test_pq_concurrent_unique_pops;
          qt prop_pq_matches_sorted_model;
        ] );
    ]
