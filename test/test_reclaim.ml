module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr
module Leaky = Ts_reclaim.Leaky
module Direct_free = Ts_reclaim.Direct_free
module Hazard = Ts_reclaim.Hazard
module Epoch = Ts_reclaim.Epoch
module Stacktrack = Ts_reclaim.Stacktrack
module Debra = Ts_reclaim.Debra
module Hyaline = Ts_reclaim.Hyaline

let check = Alcotest.(check int)

let cfg = Runtime.default_config

let alloc_node () = Ptr.of_addr (Runtime.malloc 3)

(* -------------------------------- leaky --------------------------------- *)

let test_leaky_never_frees () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         for _ = 1 to 100 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "retired" 100 smr.Smr.counters.retired;
         check "freed nothing" 0 smr.Smr.counters.freed));
  ignore (Runtime.start r);
  check "all blocks leaked" 100 (Alloc.live_blocks (Runtime.alloc r))

let test_leaky_node_stays_readable () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Leaky.create () in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 9;
         smr.Smr.retire p;
         (* leaky = dangling reads never fault *)
         check "still readable" 9 (Runtime.read (Ptr.addr p))))

(* ------------------------------ direct free ----------------------------- *)

let test_direct_free_frees_immediately () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = Direct_free.create () in
         smr.Smr.thread_init ();
         for _ = 1 to 50 do
           smr.Smr.retire (alloc_node ())
         done;
         check "all freed" 50 smr.Smr.counters.freed));
  ignore (Runtime.start r);
  check "no blocks live" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_direct_free_causes_uaf () =
  (* The injected failure: a reader holds a reference across a direct free
     and dereferences it.  The unmanaged heap must catch this — proving the
     clean runs of the safe schemes are meaningful. *)
  let saw = ref false in
  (try
     ignore
       (Runtime.run ~config:cfg (fun () ->
            let smr = Direct_free.create () in
            smr.Smr.thread_init ();
            Frame.with_frame 1 (fun fr ->
                let p = alloc_node () in
                Frame.set fr 0 p;
                smr.Smr.retire p;
                ignore (Runtime.read (Ptr.addr p)))))
   with Runtime.Thread_failure (0, Mem.Fault (Mem.Uaf_read, _)) -> saw := true);
  Alcotest.(check bool) "UAF detected" true !saw

(* ------------------------------- hazard --------------------------------- *)

let hp ~max_threads () = Hazard.create ~threshold_extra:8 ~max_threads ()

let test_hazard_unprotected_freed () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = hp ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 100 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "retired" 100 smr.Smr.counters.retired;
         check "all freed" 100 smr.Smr.counters.freed));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_hazard_protected_survives () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = hp ~max_threads:4 () in
         let cell = Runtime.alloc_region 1 in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 321;
         Runtime.write cell p;
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               smr.Smr.op_begin ();
               let q = smr.Smr.protect ~slot:0 (Runtime.read cell) in
               Runtime.write grabbed 1;
               while Runtime.read release = 0 do
                 Runtime.yield ()
               done;
               check "protected node intact" 321 (Runtime.read (Ptr.addr q));
               smr.Smr.release ~slot:0;
               smr.Smr.op_end ();
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         Runtime.write cell 0;
         smr.Smr.retire p;
         (* force scans *)
         for _ = 1 to 60 do
           smr.Smr.retire (alloc_node ())
         done;
         Alcotest.(check bool) "scans happened" true (smr.Smr.counters.cleanups >= 1);
         Alcotest.(check bool) "protected node not freed" true
           (smr.Smr.counters.freed < smr.Smr.counters.retired);
         Runtime.write release 1;
         Runtime.join holder;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "freed after release" 61 smr.Smr.counters.freed))

let test_hazard_fences_paid () =
  (* protect = store + mfence: the per-step cost the paper measures. *)
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = hp ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 10 do
           ignore (smr.Smr.protect ~slot:0 (Ptr.of_addr 42))
         done;
         smr.Smr.release ~slot:0));
  let res = Runtime.start r in
  check "ten fences" 10 res.Runtime.run_stats.fences

let test_hazard_slot_rotation () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = hp ~max_threads:2 () in
         smr.Smr.thread_init ();
         let p0 = alloc_node () and p1 = alloc_node () in
         ignore (smr.Smr.protect ~slot:0 p0);
         ignore (smr.Smr.protect ~slot:1 p1);
         smr.Smr.retire p0;
         smr.Smr.retire p1;
         for _ = 1 to 40 do
           smr.Smr.retire (alloc_node ())
         done;
         (* both slots protect *)
         ignore (Runtime.read (Ptr.addr p0));
         ignore (Runtime.read (Ptr.addr p1));
         smr.Smr.op_end ();
         (* op_end clears every slot *)
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "everything freed once unprotected" 42 smr.Smr.counters.freed))

let test_hazard_orphans_reclaimed () =
  (* a thread exits with a non-empty retire list; flush must pick it up *)
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = hp ~max_threads:4 () in
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               for _ = 1 to 5 do
                 smr.Smr.retire (alloc_node ())
               done;
               smr.Smr.thread_exit ())
         in
         Runtime.join w;
         smr.Smr.flush ();
         check "orphans freed" 5 smr.Smr.counters.freed));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

(* -------------------------------- epoch --------------------------------- *)

let ep ?errant ~max_threads () = Epoch.create ?errant ~batch:16 ~max_threads ()

let test_epoch_quiescent_frees () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = ep ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 100 do
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all freed" 100 smr.Smr.counters.freed;
         Alcotest.(check bool) "several cleanups" true (smr.Smr.counters.cleanups >= 4)));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_epoch_waits_for_reader () =
  (* A mid-operation reader blocks the reclaimer until its op ends. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = ep ~max_threads:4 () in
         let cell = Runtime.alloc_region 1 in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         let freed_at = Runtime.alloc_region 1 in
         let reader_done_at = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 456;
         Runtime.write cell p;
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               smr.Smr.op_begin ();
               Frame.with_frame 1 (fun fr ->
                   Frame.set fr 0 (Runtime.read cell);
                   Runtime.write grabbed 1;
                   while Runtime.read release = 0 do
                     Runtime.yield ()
                   done;
                   (* still inside the operation: the node must be alive *)
                   check "alive inside op" 456 (Runtime.read (Ptr.addr (Frame.get fr 0))));
               Runtime.write reader_done_at (Runtime.now ());
               smr.Smr.op_end ();
               smr.Smr.thread_exit ())
         in
         let reclaimer =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               while Runtime.read grabbed = 0 do
                 Runtime.yield ()
               done;
               smr.Smr.op_begin ();
               Runtime.write cell 0;
               smr.Smr.retire p;
               for _ = 1 to 20 do
                 smr.Smr.retire (alloc_node ())
               done;
               smr.Smr.op_end ();
               (* the batch overflowed: cleanup ran inside op_end and must
                  have waited for the holder *)
               Runtime.write freed_at (Runtime.now ());
               smr.Smr.thread_exit ())
         in
         Runtime.advance 5_000;
         Runtime.write release 1;
         Runtime.join holder;
         Runtime.join reclaimer;
         Alcotest.(check bool) "cleanup finished after reader's op" true
           (Runtime.read freed_at > Runtime.read reader_done_at);
         check "eventually freed" 21 smr.Smr.counters.freed;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_epoch_no_mutual_stall () =
  (* Two threads reclaiming simultaneously must not deadlock. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = ep ~max_threads:4 () in
         let worker () =
           smr.Smr.thread_init ();
           for _ = 1 to 200 do
             smr.Smr.op_begin ();
             smr.Smr.retire (alloc_node ());
             smr.Smr.op_end ()
           done;
           smr.Smr.thread_exit ()
         in
         let a = Runtime.spawn worker and b = Runtime.spawn worker in
         Runtime.join a;
         Runtime.join b;
         smr.Smr.flush ();
         check "all freed" 400 smr.Smr.counters.freed))

let test_slow_epoch_stalls_others () =
  (* The errant thread's in-operation delay holds up the other thread's
     cleanup: measurable as stall cycles on the victim. *)
  let extras_of smr = smr.Smr.extras () in
  let stall_with errant =
    let out = ref 0 in
    ignore
      (Runtime.run ~config:{ cfg with seed = 11 } (fun () ->
           let smr = Epoch.create ?errant ~batch:16 ~max_threads:4 () in
           let worker () =
             smr.Smr.thread_init ();
             for _ = 1 to 150 do
               smr.Smr.op_begin ();
               smr.Smr.retire (alloc_node ());
               smr.Smr.op_end ()
             done;
             smr.Smr.thread_exit ()
           in
           let a = Runtime.spawn worker in
           let b = Runtime.spawn worker in
           Runtime.join a;
           Runtime.join b;
           smr.Smr.flush ();
           out := List.assoc "stall-cycles" (extras_of smr)));
    !out
  in
  let baseline = stall_with None in
  let slowed = stall_with (Some (1, 100_000)) in
  Alcotest.(check bool)
    (Fmt.str "stalls grow with errant delay (%d -> %d)" baseline slowed)
    true
    (slowed > baseline + 50_000)

let test_epoch_two_writes_per_op () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = ep ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 7 do
           smr.Smr.op_begin ();
           smr.Smr.op_end ()
         done));
  let res = Runtime.start r in
  check "exactly two counter writes per op" 14 res.Runtime.run_stats.writes

(* ------------------------------ stacktrack ------------------------------ *)

let st ~max_threads () = Stacktrack.create ~ring:16 ~threshold:24 ~max_threads ()

let test_stacktrack_unreferenced_freed () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = st ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 100 do
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all freed" 100 smr.Smr.counters.freed;
         Alcotest.(check bool) "scans ran" true (smr.Smr.counters.cleanups >= 2)));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_stacktrack_visible_ref_survives () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = st ~max_threads:4 () in
         let cell = Runtime.alloc_region 1 in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         Runtime.write (Ptr.addr p) 654;
         Runtime.write cell p;
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               smr.Smr.op_begin ();
               (* publish the access in the visible ring, like the
                  StackTrack fallback path does per read *)
               let q = smr.Smr.protect ~slot:0 (Runtime.read cell) in
               Runtime.write grabbed 1;
               while Runtime.read release = 0 do
                 Runtime.yield ()
               done;
               check "visible node intact" 654 (Runtime.read (Ptr.addr q));
               smr.Smr.op_end ();
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         Runtime.write cell 0;
         smr.Smr.retire p;
         for _ = 1 to 60 do
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         Alcotest.(check bool) "held back while visible" true
           (smr.Smr.counters.freed < smr.Smr.counters.retired);
         Runtime.write release 1;
         Runtime.join holder;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "freed after op ended" 61 smr.Smr.counters.freed))

let test_stacktrack_ring_reset_per_op () =
  (* references published in an earlier operation do not pin after op_end *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = st ~max_threads:2 () in
         smr.Smr.thread_init ();
         let p = alloc_node () in
         smr.Smr.op_begin ();
         ignore (smr.Smr.protect ~slot:0 p);
         smr.Smr.op_end ();
         smr.Smr.op_begin ();
         smr.Smr.retire p;
         for _ = 1 to 40 do
           smr.Smr.retire (alloc_node ())
         done;
         smr.Smr.op_end ();
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "stale publication did not pin" 0
           (smr.Smr.counters.retired - smr.Smr.counters.freed)))

let test_stacktrack_cheaper_than_hazard () =
  (* the scheme's selling point: publication is two plain stores, no fence *)
  let fences_of make =
    let r = Runtime.create cfg in
    ignore
      (Runtime.add_thread r (fun () ->
           let smr = make () in
           smr.Smr.thread_init ();
           smr.Smr.op_begin ();
           for _ = 1 to 10 do
             ignore (smr.Smr.protect ~slot:0 (Ptr.of_addr 42))
           done;
           smr.Smr.op_end ()));
    (Runtime.start r).Runtime.run_stats.fences
  in
  check "stacktrack protect uses no fences" 0 (fences_of (st ~max_threads:2));
  check "hazard protect fences every time" 10 (fences_of (hp ~max_threads:2))

(* -------------------------------- debra --------------------------------- *)

let test_debra_quiescent_frees () =
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = Debra.create ~batch:16 ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 100 do
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "all freed" 100 smr.Smr.counters.freed;
         Alcotest.(check bool) "several cleanups" true (smr.Smr.counters.cleanups >= 2)));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_debra_neutralizes_pinned_reader () =
  (* The scheme's whole point: where plain epoch wedges behind a reader
     that never leaves its operation, DEBRA+ signals it, the handler
     announces quiescence and aborts the operation with [Neutralized],
     and reclamation proceeds. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Debra.create ~batch:8 ~max_threads:4 () in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         let neutralized = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               (try
                  smr.Smr.op_begin ();
                  Runtime.write grabbed 1;
                  while Runtime.read release = 0 do
                    Runtime.yield ()
                  done;
                  smr.Smr.op_end ()
                with Smr.Neutralized -> Runtime.write neutralized 1);
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         let rounds = ref 0 in
         while Runtime.read neutralized = 0 && !rounds < 100 do
           incr rounds;
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         Runtime.write release 1;
         Runtime.join holder;
         check "reader was neutralized" 1 (Runtime.read neutralized);
         Alcotest.(check bool) "neutralization counted" true
           (List.assoc "neutralizations" (smr.Smr.extras ()) >= 1);
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         check "nothing pinned afterwards" 0
           (smr.Smr.counters.retired - smr.Smr.counters.freed)))

let test_debra_no_mutual_stall () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Debra.create ~batch:16 ~max_threads:4 () in
         let worker () =
           smr.Smr.thread_init ();
           for _ = 1 to 200 do
             let rec op () =
               try
                 smr.Smr.op_begin ();
                 smr.Smr.retire (alloc_node ());
                 smr.Smr.op_end ()
               with Smr.Neutralized -> op ()
             in
             op ()
           done;
           smr.Smr.thread_exit ()
         in
         let a = Runtime.spawn worker and b = Runtime.spawn worker in
         Runtime.join a;
         Runtime.join b;
         smr.Smr.flush ();
         Alcotest.(check bool) "at least the clean retires freed" true
           (smr.Smr.counters.freed >= 400);
         check "conservation" smr.Smr.counters.retired smr.Smr.counters.freed))

(* ------------------------------- hyaline -------------------------------- *)

let test_hyaline_idle_batches_free_immediately () =
  (* publish with href = 0 short-circuits: retirement outside any
     operation frees on the spot *)
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = Hyaline.create ~batch:8 ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 16 do
           smr.Smr.retire (alloc_node ())
         done;
         check "all freed" 16 smr.Smr.counters.freed;
         check "both batches freed on the spot" 2
           (List.assoc "immediate-frees" (smr.Smr.extras ()))));
  ignore (Runtime.start r);
  check "allocator empty" 0 (Alloc.live_blocks (Runtime.alloc r))

let test_hyaline_active_reader_pins_batches () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = Hyaline.create ~batch:8 ~max_threads:4 () in
         let release = Runtime.alloc_region 1 in
         let grabbed = Runtime.alloc_region 1 in
         smr.Smr.thread_init ();
         let holder =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               smr.Smr.op_begin ();
               Runtime.write grabbed 1;
               while Runtime.read release = 0 do
                 Runtime.yield ()
               done;
               smr.Smr.op_end ();
               smr.Smr.thread_exit ())
         in
         while Runtime.read grabbed = 0 do
           Runtime.yield ()
         done;
         for _ = 1 to 40 do
           smr.Smr.op_begin ();
           smr.Smr.retire (alloc_node ());
           smr.Smr.op_end ()
         done;
         (* every batch was published while the holder was inside an
            operation: its reference pins them all *)
         check "nothing freed while reader active" 0 smr.Smr.counters.freed;
         Runtime.write release 1;
         Runtime.join holder;
         (* the holder's leave walked the whole list and dropped the last
            reference on each batch *)
         check "all batches freed by the leave" 40 smr.Smr.counters.freed;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_hyaline_op_path_fence_free () =
  (* the advertised cost model: enter and leave are one fetch-and-add
     each — no CAS loop, no fence, on the operation path *)
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let smr = Hyaline.create ~batch:8 ~max_threads:2 () in
         smr.Smr.thread_init ();
         for _ = 1 to 7 do
           smr.Smr.op_begin ();
           smr.Smr.op_end ()
         done));
  let res = Runtime.start r in
  check "no CAS on the op path" 0 res.Runtime.run_stats.cas_ops;
  check "no fences on the op path" 0 res.Runtime.run_stats.fences

let () =
  Alcotest.run "ts_reclaim"
    [
      ( "leaky",
        [
          Alcotest.test_case "never frees" `Quick test_leaky_never_frees;
          Alcotest.test_case "dangling stays readable" `Quick test_leaky_node_stays_readable;
        ] );
      ( "direct-free",
        [
          Alcotest.test_case "frees immediately" `Quick test_direct_free_frees_immediately;
          Alcotest.test_case "causes detectable UAF" `Quick test_direct_free_causes_uaf;
        ] );
      ( "hazard",
        [
          Alcotest.test_case "unprotected freed" `Quick test_hazard_unprotected_freed;
          Alcotest.test_case "protected survives" `Quick test_hazard_protected_survives;
          Alcotest.test_case "fence per protect" `Quick test_hazard_fences_paid;
          Alcotest.test_case "slot rotation" `Quick test_hazard_slot_rotation;
          Alcotest.test_case "orphans reclaimed" `Quick test_hazard_orphans_reclaimed;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "quiescent frees" `Quick test_epoch_quiescent_frees;
          Alcotest.test_case "waits for reader" `Quick test_epoch_waits_for_reader;
          Alcotest.test_case "no mutual stall" `Quick test_epoch_no_mutual_stall;
          Alcotest.test_case "slow epoch stalls others" `Quick test_slow_epoch_stalls_others;
          Alcotest.test_case "two writes per op" `Quick test_epoch_two_writes_per_op;
        ] );
      ( "stacktrack",
        [
          Alcotest.test_case "unreferenced freed" `Quick test_stacktrack_unreferenced_freed;
          Alcotest.test_case "visible ref survives" `Quick test_stacktrack_visible_ref_survives;
          Alcotest.test_case "ring reset per op" `Quick test_stacktrack_ring_reset_per_op;
          Alcotest.test_case "no fences (vs hazard)" `Quick test_stacktrack_cheaper_than_hazard;
        ] );
      ( "debra",
        [
          Alcotest.test_case "quiescent frees" `Quick test_debra_quiescent_frees;
          Alcotest.test_case "neutralizes pinned reader" `Quick
            test_debra_neutralizes_pinned_reader;
          Alcotest.test_case "no mutual stall" `Quick test_debra_no_mutual_stall;
        ] );
      ( "hyaline",
        [
          Alcotest.test_case "idle batches free immediately" `Quick
            test_hyaline_idle_batches_free_immediately;
          Alcotest.test_case "active reader pins batches" `Quick
            test_hyaline_active_reader_pins_batches;
          Alcotest.test_case "op path fence-free" `Quick test_hyaline_op_path_fence_free;
        ] );
    ]
