(* Seeded [retire] violation: the node is retired while the predecessor
   still links to it — the only preceding cas targets the node's OWN
   cell (the logical-delete mark), which is not unlink evidence.
   Parse-only — linted, never compiled. *)

let remove_bad (smr : Ts_smr.Smr.t) head =
  let cur = Ts_rt.read head in
  if Ts_rt.cas (next_cell cur) 0 1 then smr.retire cur

(* The legal shape: the cas targets the predecessor's cell. *)
let remove_ok (smr : Ts_smr.Smr.t) prev_cell head =
  let cur = Ts_rt.read head in
  if Ts_rt.cas prev_cell cur 0 then smr.retire cur
