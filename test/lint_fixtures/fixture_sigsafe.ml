(* Seeded [sigsafe] violations: the handler reaches a function that
   frees through the facade and takes a lock.  Parse-only — linted,
   never compiled. *)

module Runtime = Ts_rt

let scan_and_free t =
  Runtime.free t;
  Mutex.lock t

let install t = Runtime.set_signal_handler (fun () -> scan_and_free t)
