(* Seeded [padded] violations against the fixture whitelist entry in
   lib/lint/pass_padding.ml.  Parse-only — linted, never compiled. *)

type hot = { sig_word : int Atomic.t; ack_word : int Atomic.t; owner : int }

type cell = { value : int Atomic.t }

let make_hot () = { sig_word = Atomic.make 0; ack_word = Ts_util.Padded.atomic 0; owner = 0 }

let make_cell () = { value = Atomic.make 0 }
