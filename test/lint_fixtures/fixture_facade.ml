(* Seeded [facade] violations: the alias and open shapes the original
   textual grep was blind to, plus a plain qualified use.  Parse-only —
   this file is linted by the regression suite, never compiled. *)

module A = Atomic

open Mutex

let counter = A.make 0
let spawn_worker f = Domain.spawn f
