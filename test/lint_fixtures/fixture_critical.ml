(* Seeded [critical] violations.  Parse-only — linted, never compiled. *)

let bad_bracket () =
  Ts_rt.critical (fun () ->
      Ts_rt.join 0;
      while Ts_rt.read 0 = 0 do
        Ts_rt.poll ()
      done)

let nested () = Ts_rt.critical (fun () -> Ts_rt.critical (fun () -> ()))

let prebuilt body = Ts_rt.critical body
