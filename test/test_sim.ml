module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Cost_model = Ts_sim.Cost_model
module Mem = Ts_umem.Mem
module Ptr = Ts_umem.Ptr

let check = Alcotest.(check int)

let cfg = Runtime.default_config

let run ?(config = cfg) f = Runtime.run ~config f

(* ------------------------------ basic runs ------------------------------ *)

let test_empty_main () =
  let r = run (fun () -> ()) in
  Alcotest.(check (list reject)) "no failures" [] (List.map snd r.Runtime.failures)

let test_rw_roundtrip () =
  let out = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 4 in
         Runtime.write a 17;
         Runtime.write (a + 3) 21;
         out := Runtime.read a + Runtime.read (a + 3)));
  check "sum" 38 !out

let test_clock_advances () =
  let t0 = ref 0 and t1 = ref 0 in
  ignore
    (run (fun () ->
         t0 := Runtime.now ();
         let a = Runtime.alloc_region 1 in
         Runtime.write a 1;
         ignore (Runtime.read a);
         t1 := Runtime.now ()));
  Alcotest.(check bool) "time moved" true (!t1 > !t0)

let test_elapsed_cost_model () =
  (* With the uniform cost model every effect is one cycle, so virtual time
     is exactly the operation count. *)
  let config = { cfg with cost = Cost_model.uniform } in
  let r =
    run ~config (fun () ->
        let a = Runtime.alloc_region 1 in
        (* region alloc = 1 cycle, then 5 writes *)
        for i = 1 to 5 do
          Runtime.write a i
        done)
  in
  check "elapsed = 6" 6 r.Runtime.elapsed

let test_cas_semantics () =
  let ok = ref false and ko = ref true and v = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         Runtime.write a 5;
         ok := Runtime.cas a 5 6;
         ko := Runtime.cas a 5 7;
         v := Runtime.read a));
  Alcotest.(check bool) "cas succeeds on match" true !ok;
  Alcotest.(check bool) "cas fails on mismatch" false !ko;
  check "value" 6 !v

let test_faa () =
  let v = ref 0 and old = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         Runtime.write a 10;
         old := Runtime.faa a 5;
         v := Runtime.read a));
  check "faa returns old" 10 !old;
  check "faa adds" 15 !v

(* ------------------------------ determinism ----------------------------- *)

let chaotic_main () =
  let a = Runtime.alloc_region 1 in
  Runtime.write a 0;
  let workers =
    List.init 8 (fun _ ->
        Runtime.spawn (fun () ->
            for _ = 1 to 50 do
              ignore (Runtime.faa a 1);
              if Runtime.rand_below 4 = 0 then Runtime.yield ()
            done))
  in
  List.iter Runtime.join workers

let test_deterministic () =
  let config = { cfg with cores = 3; seed = 99 } in
  let r1 = run ~config chaotic_main in
  let r2 = run ~config chaotic_main in
  check "same elapsed" r1.Runtime.elapsed r2.Runtime.elapsed;
  check "same steps" r1.Runtime.run_stats.steps r2.Runtime.run_stats.steps;
  check "same switches" r1.Runtime.run_stats.ctx_switches r2.Runtime.run_stats.ctx_switches

let test_seed_changes_schedule () =
  (* Different seeds give different thread-local RNG streams, hence
     different yields and different step counts. *)
  let r1 = run ~config:{ cfg with cores = 3; seed = 1 } chaotic_main in
  let r2 = run ~config:{ cfg with cores = 3; seed = 2 } chaotic_main in
  Alcotest.(check bool) "schedules differ" true
    (r1.Runtime.run_stats.steps <> r2.Runtime.run_stats.steps
    || r1.Runtime.elapsed <> r2.Runtime.elapsed)

(* ----------------------------- threads ---------------------------------- *)

let test_spawn_join () =
  let out = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Runtime.advance 100;
               Runtime.write a 123)
         in
         Runtime.join t;
         out := Runtime.read a));
  check "child ran before join returned" 123 !out

let test_atomic_counter_exact () =
  let out = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         Runtime.write a 0;
         let ts =
           List.init 10 (fun _ ->
               Runtime.spawn (fun () ->
                   for _ = 1 to 100 do
                     ignore (Runtime.faa a 1)
                   done))
         in
         List.iter Runtime.join ts;
         out := Runtime.read a));
  check "atomic increments all land" 1000 !out

let test_unsynchronized_counter_loses () =
  (* Plain read+write increments across threads must interleave and lose
     updates: this pins down that the scheduler really interleaves at
     per-operation granularity. *)
  let out = ref 0 in
  ignore
    (run ~config:{ cfg with seed = 7 } (fun () ->
         let a = Runtime.alloc_region 1 in
         Runtime.write a 0;
         let ts =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   for _ = 1 to 200 do
                     let v = Runtime.read a in
                     Runtime.write a (v + 1)
                   done))
         in
         List.iter Runtime.join ts;
         out := Runtime.read a));
  Alcotest.(check bool) "updates lost" true (!out < 800);
  Alcotest.(check bool) "but some landed" true (!out >= 200)

let test_tids_sequential () =
  let tids = ref [] in
  ignore
    (run (fun () ->
         let t1 = Runtime.spawn (fun () -> ()) in
         let t2 = Runtime.spawn (fun () -> ()) in
         tids := [ Runtime.self (); t1; t2 ]));
  Alcotest.(check (list int)) "tids" [ 0; 1; 2 ] !tids

let test_is_done () =
  ignore
    (run (fun () ->
         let t = Runtime.spawn (fun () -> Runtime.advance 10) in
         Alcotest.(check bool) "not done yet" false (Runtime.is_done t);
         Runtime.join t;
         Alcotest.(check bool) "done after join" true (Runtime.is_done t)))

(* ----------------------------- failures --------------------------------- *)

exception Boom

let test_failure_propagates () =
  Alcotest.check_raises "child failure surfaces" (Runtime.Thread_failure (1, Boom)) (fun () ->
      ignore
        (run (fun () ->
             let t = Runtime.spawn (fun () -> raise Boom) in
             Runtime.join t)))

let test_failure_collected () =
  let r =
    run ~config:{ cfg with propagate_failures = false } (fun () ->
        ignore (Runtime.spawn (fun () -> raise Boom)))
  in
  match r.Runtime.failures with
  | [ (1, Boom) ] -> ()
  | _ -> Alcotest.fail "expected one failure from tid 1"

let test_uaf_kills_thread () =
  let saw_fault = ref false in
  (try
     ignore
       (run (fun () ->
            let a = Runtime.malloc 4 in
            Runtime.free a;
            ignore (Runtime.read a)))
   with Runtime.Thread_failure (0, Mem.Fault (Mem.Uaf_read, _)) -> saw_fault := true);
  Alcotest.(check bool) "UAF became a thread failure" true !saw_fault

let test_step_limit () =
  Alcotest.check_raises "livelock caught" Runtime.Step_limit_exceeded (fun () ->
      ignore
        (run ~config:{ cfg with max_steps = 1000 } (fun () ->
             let a = Runtime.alloc_region 1 in
             while Runtime.read a = 0 do
               Runtime.yield ()
             done)))

(* ----------------------------- memory effects --------------------------- *)

let test_malloc_free_effect () =
  let live_during = ref (-1) in
  let r = Runtime.create cfg in
  ignore
    (Runtime.add_thread r (fun () ->
         let a = Runtime.malloc 10 in
         let b = Runtime.malloc 10 in
         live_during := Ts_umem.Alloc.live_blocks (Runtime.alloc r);
         Runtime.free a;
         Runtime.free b));
  ignore (Runtime.start r);
  check "live during" 2 !live_during;
  check "live after" 0 (Ts_umem.Alloc.live_blocks (Runtime.alloc r))

let test_malloc_charges_cycles () =
  let config = { cfg with cost = Cost_model.uniform } in
  let r = run ~config (fun () -> ignore (Runtime.malloc 4)) in
  check "one step, one cycle" 1 r.Runtime.elapsed

(* ----------------------------- frames ----------------------------------- *)

let test_frame_rw () =
  ignore
    (run (fun () ->
         Frame.with_frame 3 (fun fr ->
             Frame.set fr 0 10;
             Frame.set fr 2 30;
             check "slot0" 10 (Frame.get fr 0);
             check "slot1 zeroed" 0 (Frame.get fr 1);
             check "slot2" 30 (Frame.get fr 2))))

let test_frame_nesting () =
  ignore
    (run (fun () ->
         let base0, sp0 = Runtime.stack_range () in
         check "stack empty at start" base0 sp0;
         Frame.with_frame 4 (fun _ ->
             Frame.with_frame 2 (fun _ ->
                 let _, sp = Runtime.stack_range () in
                 check "two frames live" (base0 + 6) sp));
         let _, sp = Runtime.stack_range () in
         check "all popped" base0 sp))

let test_frame_stale_words_linger () =
  (* Popped frames leave their words behind — the conservatism the paper
     relies on and the reason scans use sp as the bound. *)
  ignore
    (run (fun () ->
         let marker = 0xABCDE8 in
         Frame.with_frame 1 (fun fr -> Frame.set fr 0 marker);
         let fr2 = Frame.push 1 in
         check "fresh frame is zeroed" 0 (Frame.get fr2 0);
         Frame.pop fr2))

let test_stack_overflow () =
  let config = { cfg with stack_words = 8 } in
  (try
     ignore
       (run ~config (fun () ->
            ignore (Frame.push 6);
            ignore (Frame.push 6)));
     Alcotest.fail "expected overflow"
   with Runtime.Thread_failure (0, Runtime.Sim_error _) -> ())

let test_register_mirroring () =
  (* A freshly loaded value must be visible in the register file even before
     any explicit stack store: this is what makes values "in flight" visible
     to conservative scans. *)
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         let secret = Ptr.of_addr 424242 in
         Runtime.write a secret;
         let v = Runtime.read a in
         ignore v;
         let base, len = Runtime.reg_range () in
         let found = ref false in
         for i = base to base + len - 1 do
           if Runtime.read i = secret then found := true
         done;
         Alcotest.(check bool) "register file holds the load" true !found))

let test_private_ranges () =
  ignore
    (run (fun () ->
         let blk = Runtime.alloc_region 8 in
         Runtime.add_private_range blk 8;
         let ranges = Runtime.private_ranges () in
         Alcotest.(check bool) "registered" true (List.mem (blk, 8) ranges);
         Runtime.remove_private_range blk 8;
         Alcotest.(check bool) "unregistered" false
           (List.mem (blk, 8) (Runtime.private_ranges ()))))

let test_scan_ranges_of_other () =
  ignore
    (run (fun () ->
         let ready = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Frame.with_frame 4 (fun _ ->
                   Runtime.write ready 1;
                   (* hold the frame until the main thread has looked *)
                   while Runtime.read ready <> 2 do
                     Runtime.yield ()
                   done))
         in
         while Runtime.read ready <> 1 do
           Runtime.yield ()
         done;
         let ranges = Runtime.scan_ranges_of t in
         (* stack (non-empty) + registers at least *)
         Alcotest.(check bool) "at least two ranges" true (List.length ranges >= 2);
         Runtime.write ready 2;
         Runtime.join t))

(* ----------------------------- signals ---------------------------------- *)

let test_signal_basic () =
  let out = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         let hit = Runtime.alloc_region 1 in
         Runtime.write a 0;
         Runtime.write hit 0;
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> Runtime.write hit 1);
               (* spin until signaled *)
               while Runtime.read hit = 0 do
                 Runtime.yield ()
               done)
         in
         Runtime.advance 10;
         Runtime.signal t;
         Runtime.join t;
         out := Runtime.read hit));
  check "handler ran" 1 !out

let test_signal_interrupts_spin () =
  (* The target never yields control voluntarily in terms of checking any
     flag set by others — the handler itself flips its loop variable.
     This is the "isolated from application code" property (§1.2). *)
  let delivered = ref 0 in
  ignore
    (run (fun () ->
         let stop = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> Runtime.write stop 1);
               while Runtime.read stop = 0 do
                 Runtime.advance 5 (* busy loop, no yields *)
               done)
         in
         Runtime.advance 50;
         Runtime.signal t;
         Runtime.join t;
         delivered := 1));
  check "spinner was interrupted" 1 !delivered

let test_signal_nesting () =
  let max_depth = ref 0 in
  ignore
    (run (fun () ->
         let flag = Runtime.alloc_region 1 in
         let depth_cell = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () ->
                   let d = Runtime.signal_depth () in
                   let m = Runtime.read depth_cell in
                   if d > m then Runtime.write depth_cell d;
                   if d = 1 then begin
                     (* signal ourselves from inside the handler: the second
                        handler must stack on top of the first *)
                     Runtime.signal (Runtime.self ());
                     Runtime.advance 10
                   end
                   else Runtime.write flag 1);
               while Runtime.read flag = 0 do
                 Runtime.yield ()
               done)
         in
         Runtime.advance 10;
         Runtime.signal t;
         Runtime.join t;
         max_depth := Runtime.read depth_cell));
  check "handlers nested" 2 !max_depth

let test_signal_counted () =
  let r =
    run (fun () ->
        let n = Runtime.alloc_region 1 in
        let ts =
          List.init 5 (fun _ ->
              Runtime.spawn (fun () ->
                  Runtime.set_signal_handler (fun () -> ignore (Runtime.faa n 1));
                  while Runtime.read n < 5 do
                    Runtime.yield ()
                  done))
        in
        Runtime.advance 100;
        List.iter Runtime.signal ts;
        List.iter Runtime.join ts)
  in
  check "sent" 5 r.Runtime.run_stats.signals_sent;
  check "delivered" 5 r.Runtime.run_stats.signals_delivered

let test_signal_to_descheduled_thread () =
  (* One core, three threads: the signaled thread is certainly off-core at
     send time; it must still run its handler promptly. *)
  let out = ref 0 in
  ignore
    (run ~config:{ cfg with cores = 1; quantum = 500 } (fun () ->
         let hit = Runtime.alloc_region 1 in
         Runtime.write hit 0;
         let victim =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> Runtime.write hit 1);
               while Runtime.read hit = 0 do
                 Runtime.advance 10
               done)
         in
         let _noise =
           Runtime.spawn (fun () ->
               for _ = 1 to 100 do
                 Runtime.advance 100
               done)
         in
         Runtime.advance 2000;
         Runtime.signal victim;
         Runtime.join victim;
         out := Runtime.read hit));
  check "handler ran despite being descheduled" 1 !out

let test_sigreturn_restores_registers () =
  (* a handler's own memory traffic must not clobber the interrupted
     context: sigreturn restores the register file *)
  ignore
    (run (fun () ->
         let secret = Ptr.of_addr 987654 in
         let cell = Runtime.alloc_region 1 in
         let scratch = Runtime.alloc_region 1 in
         let hit = Runtime.alloc_region 1 in
         Runtime.write cell secret;
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () ->
                   (* churn way past the ring size *)
                   for _ = 1 to 100 do
                     ignore (Runtime.read scratch)
                   done;
                   Runtime.write hit 1);
               let v = Runtime.read cell in
               ignore v;
               while Runtime.read hit = 0 do
                 Runtime.advance 5
               done;
               (* after the handler, the pre-signal load must still be in
                  the live register file *)
               let base, len = Runtime.reg_range () in
               let found = ref false in
               for i = base to base + len - 1 do
                 if Runtime.read i = secret then found := true
               done;
               Alcotest.(check bool) "register context restored" true !found)
         in
         Runtime.advance 50;
         Runtime.signal t;
         Runtime.join t))

let test_clear_regs () =
  ignore
    (run (fun () ->
         let cell = Runtime.alloc_region 1 in
         Runtime.write cell 123456;
         ignore (Runtime.read cell);
         Runtime.clear_regs ();
         let base, len = Runtime.reg_range () in
         for i = base to base + len - 1 do
           check "wiped" 0 (Runtime.read i)
         done))

let test_signal_finished_thread () =
  let r =
    run (fun () ->
        let t = Runtime.spawn (fun () -> ()) in
        Runtime.join t;
        Runtime.signal t (* must be a harmless no-op *))
  in
  check "sent but never delivered" 1 r.Runtime.run_stats.signals_sent;
  check "no delivery" 0 r.Runtime.run_stats.signals_delivered

let test_frame_pops_on_exception () =
  ignore
    (run (fun () ->
         let base0, _ = Runtime.stack_range () in
         (try Frame.with_frame 8 (fun _ -> failwith "inner") with Failure _ -> ());
         let _, sp = Runtime.stack_range () in
         check "unwound" base0 sp))

let test_advance_negative_clamped () =
  let config = { cfg with cost = Ts_sim.Cost_model.uniform } in
  let r =
    run ~config (fun () ->
        Runtime.advance (-100);
        Runtime.advance 3)
  in
  check "only the positive advance counted" 3 r.Runtime.elapsed

let test_per_thread_rng_streams_differ () =
  let streams = ref [] in
  ignore
    (run (fun () ->
         let collect () =
           let v = List.init 8 (fun _ -> Runtime.rand_below 1000) in
           streams := v :: !streams
         in
         let a = Runtime.spawn collect and b = Runtime.spawn collect in
         Runtime.join a;
         Runtime.join b));
  match !streams with
  | [ s1; s2 ] -> Alcotest.(check bool) "independent streams" true (s1 <> s2)
  | _ -> Alcotest.fail "expected two streams"

(* -------------------------------- tracing ------------------------------- *)

let test_trace_records_lifecycle_and_signals () =
  let record, entries = Ts_sim.Trace.recorder () in
  ignore
    (run ~config:{ cfg with trace = Some record } (fun () ->
         let hit = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> Runtime.write hit 1);
               while Runtime.read hit = 0 do
                 Runtime.yield ()
               done)
         in
         Runtime.signal t;
         Runtime.join t));
  let es = List.map (fun e -> e.Ts_sim.Trace.event) (entries ()) in
  let has p = List.exists p es in
  Alcotest.(check bool) "main started" true
    (has (function Ts_sim.Trace.Thread_started { tid = 0 } -> true | _ -> false));
  Alcotest.(check bool) "signal send recorded" true
    (has (function Ts_sim.Trace.Signal_sent { sender = 0; target = 1 } -> true | _ -> false));
  Alcotest.(check bool) "handler entry recorded" true
    (has (function Ts_sim.Trace.Signal_delivered { tid = 1; depth = 1 } -> true | _ -> false));
  Alcotest.(check bool) "handler return recorded" true
    (has (function Ts_sim.Trace.Signal_returned { tid = 1 } -> true | _ -> false));
  Alcotest.(check bool) "finish recorded" true
    (has (function Ts_sim.Trace.Thread_finished { tid = 1 } -> true | _ -> false))

let test_trace_deterministic () =
  let capture () =
    let record, entries = Ts_sim.Trace.recorder () in
    ignore
      (run ~config:{ cfg with cores = 2; seed = 4; trace = Some record } chaotic_main);
    entries ()
  in
  Alcotest.(check int) "identical traces" (List.length (capture ())) (List.length (capture ()))

(* ------------------------- memory-model litmus -------------------------- *)

(* The simulator promises sequential consistency (DESIGN.md): classic
   relaxed-memory litmus outcomes must be unobservable under any seed. *)

let litmus_store_buffering =
  QCheck.Test.make ~name:"litmus SB: both threads reading 0 is forbidden" ~count:100
    QCheck.small_nat
    (fun seed ->
      let r0 = ref (-1) and r1 = ref (-1) in
      ignore
        (run ~config:{ cfg with seed; cores = 2 } (fun () ->
             let x = Runtime.alloc_region 1 and y = Runtime.alloc_region 1 in
             let a =
               Runtime.spawn (fun () ->
                   Runtime.write x 1;
                   r0 := Runtime.read y)
             in
             let b =
               Runtime.spawn (fun () ->
                   Runtime.write y 1;
                   r1 := Runtime.read x)
             in
             Runtime.join a;
             Runtime.join b));
      not (!r0 = 0 && !r1 = 0))

let litmus_message_passing =
  QCheck.Test.make ~name:"litmus MP: flag=1 implies data visible" ~count:100 QCheck.small_nat
    (fun seed ->
      let flag_seen = ref false and data_seen = ref (-1) in
      ignore
        (run ~config:{ cfg with seed; cores = 2 } (fun () ->
             let data = Runtime.alloc_region 1 and flag = Runtime.alloc_region 1 in
             let producer =
               Runtime.spawn (fun () ->
                   Runtime.write data 42;
                   Runtime.write flag 1)
             in
             let consumer =
               Runtime.spawn (fun () ->
                   if Runtime.read flag = 1 then begin
                     flag_seen := true;
                     data_seen := Runtime.read data
                   end)
             in
             Runtime.join producer;
             Runtime.join consumer));
      (not !flag_seen) || !data_seen = 42)

let litmus_coherence =
  QCheck.Test.make ~name:"litmus CoRR: reads of one location never go backwards" ~count:100
    QCheck.small_nat
    (fun seed ->
      let ok = ref true in
      ignore
        (run ~config:{ cfg with seed; cores = 3 } (fun () ->
             let x = Runtime.alloc_region 1 in
             let writer =
               Runtime.spawn (fun () ->
                   for v = 1 to 20 do
                     Runtime.write x v
                   done)
             in
             let reader () =
               let last = ref 0 in
               for _ = 1 to 30 do
                 let v = Runtime.read x in
                 if v < !last then ok := false;
                 last := v
               done
             in
             let r1 = Runtime.spawn reader and r2 = Runtime.spawn reader in
             Runtime.join writer;
             Runtime.join r1;
             Runtime.join r2));
      !ok)

(* --------------------------- core multiplexing -------------------------- *)

let test_single_core_fairness () =
  (* Two busy threads on one core must both make progress thanks to the
     quantum. *)
  let a_count = ref 0 and b_count = ref 0 in
  ignore
    (run ~config:{ cfg with cores = 1; quantum = 1000 } (fun () ->
         let ca = Runtime.alloc_region 1 and cb = Runtime.alloc_region 1 in
         let ta =
           Runtime.spawn (fun () ->
               for _ = 1 to 300 do
                 ignore (Runtime.faa ca 1)
               done)
         in
         let tb =
           Runtime.spawn (fun () ->
               for _ = 1 to 300 do
                 ignore (Runtime.faa cb 1)
               done)
         in
         Runtime.join ta;
         Runtime.join tb;
         a_count := Runtime.read ca;
         b_count := Runtime.read cb));
  check "A finished" 300 !a_count;
  check "B finished" 300 !b_count

let test_context_switches_counted () =
  let r =
    run ~config:{ cfg with cores = 1; quantum = 500 } (fun () ->
        let ts =
          List.init 4 (fun _ ->
              Runtime.spawn (fun () ->
                  for _ = 1 to 100 do
                    Runtime.advance 50
                  done))
        in
        List.iter Runtime.join ts)
  in
  Alcotest.(check bool) "oversubscription forces switches" true
    (r.Runtime.run_stats.ctx_switches > 4)

let test_unlimited_cores_no_switches () =
  let r =
    run (fun () ->
        let ts =
          List.init 4 (fun _ ->
              Runtime.spawn (fun () ->
                  for _ = 1 to 100 do
                    Runtime.advance 50
                  done))
        in
        List.iter Runtime.join ts)
  in
  check "no switches when every thread has a core" 0 r.Runtime.run_stats.ctx_switches

let test_oversubscription_slower () =
  let work () =
    let ts =
      List.init 8 (fun _ ->
          Runtime.spawn (fun () ->
              for _ = 1 to 200 do
                Runtime.advance 100
              done))
    in
    List.iter Runtime.join ts
  in
  let free_run = run work in
  let packed = run ~config:{ cfg with cores = 2; quantum = 2000 } work in
  Alcotest.(check bool) "2 cores slower than 8"
    true
    (packed.Runtime.elapsed > free_run.Runtime.elapsed)

(* --------------------------- fault injection ---------------------------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_crash_kills_thread () =
  let progress = ref (-1) and crashed_seen = ref false and done_seen = ref false in
  let r =
    run (fun () ->
        let a = Runtime.alloc_region 1 in
        let w =
          Runtime.spawn (fun () ->
              while true do
                Runtime.write a (Runtime.read a + 1)
              done)
        in
        for _ = 1 to 50 do
          Runtime.yield ()
        done;
        Runtime.crash w;
        crashed_seen := Runtime.is_crashed w;
        done_seen := Runtime.is_done w;
        let v = Runtime.read a in
        for _ = 1 to 50 do
          Runtime.yield ()
        done;
        progress := Runtime.read a - v;
        Runtime.join w (* joining a crashed thread must not hang *))
  in
  Alcotest.(check bool) "is_crashed" true !crashed_seen;
  Alcotest.(check bool) "is_done" true !done_seen;
  check "no further progress" 0 !progress;
  check "one crash counted" 1 r.Runtime.run_stats.crashes

let test_crash_self_never_returns () =
  let before = ref false and after = ref false in
  ignore
    (run (fun () ->
         let w =
           Runtime.spawn (fun () ->
               before := true;
               Runtime.crash (Runtime.self ());
               after := true)
         in
         Runtime.join w));
  Alcotest.(check bool) "ran up to the crash" true !before;
  Alcotest.(check bool) "nothing after the crash" false !after

let test_crash_preserves_memory () =
  (* A crashed thread's heap writes stay visible: it died, its memory did
     not — this is what the reclaimer's proxy machinery relies on. *)
  let out = ref 0 in
  ignore
    (run (fun () ->
         let a = Runtime.alloc_region 1 in
         let ready = Runtime.alloc_region 1 in
         let w =
           Runtime.spawn (fun () ->
               Runtime.write a 77;
               Runtime.write ready 1;
               while true do
                 Runtime.advance 10
               done)
         in
         while Runtime.read ready = 0 do
           Runtime.yield ()
         done;
         Runtime.crash w;
         out := Runtime.read a));
  check "write survives its writer" 77 !out

let test_stall_freezes_then_recovers () =
  let finished = ref false and observed = ref false and frozen = ref false in
  let r =
    run (fun () ->
        let w =
          Runtime.spawn (fun () ->
              for _ = 1 to 20 do
                Runtime.advance 10
              done;
              finished := true)
        in
        Runtime.stall ~cycles:5_000 w;
        observed := Runtime.is_stalled w;
        (* a frozen thread's clock cannot move while we watch *)
        let c0 = Runtime.clock_of w in
        Runtime.advance 100;
        frozen := Runtime.clock_of w = c0 && Runtime.is_stalled w;
        Runtime.join w)
  in
  Alcotest.(check bool) "stalled when observed" true !observed;
  Alcotest.(check bool) "clock frozen while stalled" true !frozen;
  Alcotest.(check bool) "finished after waking" true !finished;
  check "one stall counted" 1 r.Runtime.run_stats.stalls

let test_stall_wakes_by_time_jump () =
  (* When everything else is done, virtual time jumps to the stalled
     thread's wake-up instead of deadlocking. *)
  let r =
    run (fun () ->
        let stop = Runtime.alloc_region 1 in
        let w =
          Runtime.spawn (fun () ->
              while Runtime.read stop = 0 do
                Runtime.advance 10
              done)
        in
        Runtime.advance 10;
        Runtime.stall ~cycles:50_000 w;
        Runtime.write stop 1;
        Runtime.join w)
  in
  Alcotest.(check bool) "run waited for the wake-up" true (r.Runtime.elapsed >= 50_000)

let test_stall_forever_abandoned () =
  let r =
    run (fun () ->
        let w =
          Runtime.spawn (fun () ->
              while true do
                Runtime.advance 10
              done)
        in
        Runtime.advance 50;
        Runtime.stall w)
  in
  Alcotest.(check (list int)) "worker reported abandoned" [ 1 ] r.Runtime.abandoned;
  check "stall counted" 1 r.Runtime.run_stats.stalls

let test_blocked_summary_diagnostics () =
  (* Post-mortem: the blocked-state report names the thread, its stall
     state, its wait note, and any signal still pending on it. *)
  let rt = Runtime.create cfg in
  ignore
    (Runtime.add_thread rt (fun () ->
         let w =
           Runtime.spawn (fun () ->
               Runtime.set_wait_note (Some "waiting for godot");
               while true do
                 Runtime.advance 10
               done)
         in
         Runtime.advance 50;
         Runtime.stall w;
         Runtime.signal w));
  let r = Runtime.start rt in
  Alcotest.(check (list int)) "abandoned" [ 1 ] r.Runtime.abandoned;
  let s = Runtime.blocked_summary rt in
  let has needle = contains s needle in
  Alcotest.(check bool) "names the thread" true (has "t1");
  Alcotest.(check bool) "reports the stall" true (has "stalled forever");
  Alcotest.(check bool) "shows the wait note" true (has "waiting for godot");
  Alcotest.(check bool) "shows the pending signal" true (has "1 pending signal")

let test_signal_pends_through_stall () =
  let hits = ref 0 and during = ref (-1) in
  ignore
    (run (fun () ->
         let ready = Runtime.alloc_region 1 and stop = Runtime.alloc_region 1 in
         let w =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> incr hits);
               Runtime.write ready 1;
               while Runtime.read stop = 0 do
                 Runtime.advance 10
               done)
         in
         while Runtime.read ready = 0 do
           Runtime.yield ()
         done;
         Runtime.stall ~cycles:2_000 w;
         Runtime.signal w;
         during := !hits;
         Runtime.write stop 1;
         Runtime.join w));
  check "not delivered while frozen" 0 !during;
  check "delivered on wake" 1 !hits

let test_delay_signals () =
  let at_send = ref 0 and at_delivery = ref 0 in
  ignore
    (run (fun () ->
         let ready = Runtime.alloc_region 1 and hit = Runtime.alloc_region 1 in
         let w =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () ->
                   at_delivery := Runtime.now ();
                   Runtime.write hit 1);
               Runtime.write ready 1;
               while Runtime.read hit = 0 do
                 Runtime.advance 10
               done)
         in
         while Runtime.read ready = 0 do
           Runtime.yield ()
         done;
         Runtime.delay_signals w 2_000;
         at_send := Runtime.now ();
         Runtime.signal w;
         Runtime.join w));
  Alcotest.(check bool) "delivered, but 2000+ cycles late" true
    (!at_delivery >= !at_send + 2_000)

let test_drop_signals () =
  let hits = ref 0 in
  let r =
    run (fun () ->
        let ready = Runtime.alloc_region 1 and stop = Runtime.alloc_region 1 in
        let w =
          Runtime.spawn (fun () ->
              Runtime.set_signal_handler (fun () -> incr hits);
              Runtime.write ready 1;
              while Runtime.read stop = 0 do
                Runtime.advance 10
              done)
        in
        while Runtime.read ready = 0 do
          Runtime.yield ()
        done;
        Runtime.drop_signals w 1;
        Runtime.signal w (* eaten *);
        Runtime.signal w (* delivered *);
        while !hits = 0 do
          Runtime.advance 10
        done;
        Runtime.write stop 1;
        Runtime.join w)
  in
  check "exactly one delivery" 1 !hits;
  check "drop counted" 1 r.Runtime.run_stats.signals_dropped;
  check "both sends counted" 2 r.Runtime.run_stats.signals_sent

(* ------------------------------ savepoints ------------------------------ *)

(* Workloads driven under savepoint/restore must keep every observable in
   simulated memory: a restore replays the thread bodies from the start,
   so host-side refs would be bumped twice. *)
let sp_workload () =
  let shared = Runtime.alloc_region 4 in
  let ts =
    List.init 3 (fun i ->
        Runtime.spawn (fun () ->
            let f = Runtime.push_frame 2 in
            for k = 1 to 12 do
              ignore (Runtime.faa shared 1);
              let v = Runtime.read (shared + 1) in
              Runtime.write (f + (k land 1)) (v + k + i);
              if k mod 3 = 0 then ignore (Runtime.cas (shared + 1) v (v + 1));
              if k mod 5 = 0 then Runtime.yield ();
              if k mod 7 = 0 then ignore (Runtime.malloc (1 + (k mod 4)))
            done;
            Runtime.pop_frame f))
  in
  List.iter Runtime.join ts

let sp_runtime ?(guided = false) seed =
  let rt = Runtime.create { cfg with seed; sched = Runtime.Uniform; max_steps = 1 lsl 20 } in
  if guided then Runtime.set_scheduler_hook rt (Some (fun _ _ -> -1));
  ignore (Runtime.add_thread rt sp_workload);
  rt

let drive_to_end rt =
  while Runtime.step_run rt ~max_steps:4096 do
    ()
  done;
  ignore (Runtime.finalize rt : Runtime.result)

let sp_roundtrip ~guided name =
  QCheck.Test.make ~name ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (seed, burst) ->
      let rt = sp_runtime ~guided (seed + 1) in
      ignore (Runtime.step_run rt ~max_steps:(5 + (seed mod 40)) : bool);
      let sp = Runtime.savepoint rt in
      let d0 = Runtime.savepoint_digest sp in
      (* arbitrary burst of further execution must leave the snapshot
         untouched (deep copy, no aliasing into the live runtime) *)
      ignore (Runtime.step_run rt ~max_steps:(1 + burst) : bool);
      let immutable = String.equal (Runtime.savepoint_digest sp) d0 in
      (* restore itself digest-verifies the replay against [sp]; compare
         once more through the public accessor for good measure *)
      Runtime.restore rt sp;
      let back = String.equal (Runtime.state_digest rt) d0 in
      drive_to_end rt;
      immutable && back)

let sp_roundtrip_policy =
  sp_roundtrip ~guided:false "savepoint/restore round-trips state (policy replay)"

let sp_roundtrip_guided =
  sp_roundtrip ~guided:true "savepoint/restore round-trips state (forced replay)"

let sp_branch_determinism =
  QCheck.Test.make ~name:"branch: child reproduces the parent's future exactly" ~count:20
    QCheck.small_nat
    (fun seed ->
      let rt = sp_runtime ~guided:true (seed + 1) in
      ignore (Runtime.step_run rt ~max_steps:(10 + (seed mod 30)) : bool);
      let sp = Runtime.savepoint rt in
      drive_to_end rt;
      let parent_final = Runtime.state_digest rt in
      let parent_choices = Runtime.choices rt in
      let rt2 = Runtime.branch rt sp in
      let at_sp = String.equal (Runtime.state_digest rt2) (Runtime.savepoint_digest sp) in
      drive_to_end rt2;
      at_sp
      && String.equal (Runtime.state_digest rt2) parent_final
      && parent_choices = Runtime.choices rt2)

let sp_preload_replay =
  QCheck.Test.make ~name:"preload_choices replays a guided run byte-for-byte" ~count:20
    QCheck.small_nat
    (fun seed ->
      let record_digest rt =
        let buf = Buffer.create 256 in
        let record e = Buffer.add_string buf (Fmt.str "%a@." Ts_sim.Trace.pp e) in
        let rt = rt { cfg with seed = seed + 1; sched = Runtime.Uniform; trace = Some record } in
        ignore (Runtime.add_thread rt sp_workload);
        drive_to_end rt;
        (Digest.string (Buffer.contents buf), Runtime.choices rt, Runtime.state_digest rt)
      in
      let t1, log, d1 =
        record_digest (fun c ->
            let rt = Runtime.create c in
            Runtime.set_scheduler_hook rt (Some (fun _ _ -> -1));
            rt)
      in
      let t2, log2, d2 =
        record_digest (fun c ->
            let rt = Runtime.create c in
            Runtime.preload_choices rt log;
            rt)
      in
      String.equal t1 t2 && log = log2 && String.equal d1 d2)

let () =
  Alcotest.run "ts_sim"
    [
      ( "basics",
        [
          Alcotest.test_case "empty main" `Quick test_empty_main;
          Alcotest.test_case "read/write" `Quick test_rw_roundtrip;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "uniform cost accounting" `Quick test_elapsed_cost_model;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "faa" `Quick test_faa;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical runs identical" `Quick test_deterministic;
          Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
        ] );
      ( "threads",
        [
          Alcotest.test_case "spawn/join" `Quick test_spawn_join;
          Alcotest.test_case "atomic counter exact" `Quick test_atomic_counter_exact;
          Alcotest.test_case "unsynchronized counter loses" `Quick
            test_unsynchronized_counter_loses;
          Alcotest.test_case "tids sequential" `Quick test_tids_sequential;
          Alcotest.test_case "is_done" `Quick test_is_done;
        ] );
      ( "failures",
        [
          Alcotest.test_case "propagation" `Quick test_failure_propagates;
          Alcotest.test_case "collection" `Quick test_failure_collected;
          Alcotest.test_case "UAF kills thread" `Quick test_uaf_kills_thread;
          Alcotest.test_case "step limit" `Quick test_step_limit;
        ] );
      ( "memory",
        [
          Alcotest.test_case "malloc/free effects" `Quick test_malloc_free_effect;
          Alcotest.test_case "malloc cycle charge" `Quick test_malloc_charges_cycles;
        ] );
      ( "frames",
        [
          Alcotest.test_case "rw" `Quick test_frame_rw;
          Alcotest.test_case "nesting" `Quick test_frame_nesting;
          Alcotest.test_case "fresh frames zeroed" `Quick test_frame_stale_words_linger;
          Alcotest.test_case "overflow" `Quick test_stack_overflow;
          Alcotest.test_case "register mirroring" `Quick test_register_mirroring;
          Alcotest.test_case "private ranges" `Quick test_private_ranges;
          Alcotest.test_case "scan ranges of another thread" `Quick test_scan_ranges_of_other;
        ] );
      ( "signals",
        [
          Alcotest.test_case "basic delivery" `Quick test_signal_basic;
          Alcotest.test_case "interrupts pure spin" `Quick test_signal_interrupts_spin;
          Alcotest.test_case "nesting" `Quick test_signal_nesting;
          Alcotest.test_case "stats" `Quick test_signal_counted;
          Alcotest.test_case "descheduled target" `Quick test_signal_to_descheduled_thread;
          Alcotest.test_case "sigreturn restores registers" `Quick
            test_sigreturn_restores_registers;
          Alcotest.test_case "signal to finished thread" `Quick test_signal_finished_thread;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash kills a thread" `Quick test_crash_kills_thread;
          Alcotest.test_case "self-crash never returns" `Quick test_crash_self_never_returns;
          Alcotest.test_case "crash preserves memory" `Quick test_crash_preserves_memory;
          Alcotest.test_case "stall freezes then recovers" `Quick
            test_stall_freezes_then_recovers;
          Alcotest.test_case "stall wakes by time jump" `Quick test_stall_wakes_by_time_jump;
          Alcotest.test_case "stall forever is abandoned" `Quick test_stall_forever_abandoned;
          Alcotest.test_case "blocked summary diagnostics" `Quick
            test_blocked_summary_diagnostics;
          Alcotest.test_case "signal pends through stall" `Quick test_signal_pends_through_stall;
          Alcotest.test_case "delayed signal delivery" `Quick test_delay_signals;
          Alcotest.test_case "dropped signals" `Quick test_drop_signals;
        ] );
      ( "trace",
        [
          Alcotest.test_case "lifecycle + signals" `Quick
            test_trace_records_lifecycle_and_signals;
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
        ] );
      ( "litmus",
        [
          QCheck_alcotest.to_alcotest litmus_store_buffering;
          QCheck_alcotest.to_alcotest litmus_message_passing;
          QCheck_alcotest.to_alcotest litmus_coherence;
        ] );
      ( "savepoints",
        [
          QCheck_alcotest.to_alcotest sp_roundtrip_policy;
          QCheck_alcotest.to_alcotest sp_roundtrip_guided;
          QCheck_alcotest.to_alcotest sp_branch_determinism;
          QCheck_alcotest.to_alcotest sp_preload_replay;
        ] );
      ( "misc",
        [
          Alcotest.test_case "clear_regs" `Quick test_clear_regs;
          Alcotest.test_case "frame pops on exception" `Quick test_frame_pops_on_exception;
          Alcotest.test_case "advance clamps negatives" `Quick test_advance_negative_clamped;
          Alcotest.test_case "per-thread rng streams" `Quick test_per_thread_rng_streams_differ;
        ] );
      ( "cores",
        [
          Alcotest.test_case "single-core fairness" `Quick test_single_core_fairness;
          Alcotest.test_case "switches counted" `Quick test_context_switches_counted;
          Alcotest.test_case "no switches undersubscribed" `Quick
            test_unlimited_cores_no_switches;
          Alcotest.test_case "oversubscription is slower" `Quick test_oversubscription_slower;
        ] );
    ]
