(* The paper's Section 5 correctness properties, executed.

   Lemma 1  (safety): a node reclaimed by ThreadScan has already been
            retired — no access violation can follow.
   Lemma 2  (bounded interference): operations that do not call free keep
            their progress; ThreadScan adds at most a bounded number of
            steps per reclamation event.
   Lemma 3  (collect termination): TS-Collect finishes under a fair
            scheduler regardless of the progress of application code —
            even when a thread is stuck inside an operation forever.
            (Epoch-based reclamation provably blocks in that situation;
            we demonstrate both.)
   Lemma 4  (eventual reclamation): nodes not referenced from any stack or
            register at the start of a phase are retired by that phase.  *)

module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr
module Config = Threadscan.Config

let check = Alcotest.(check int)

let cfg = Runtime.default_config

let ts_smr ?(buffer_size = 8) ~max_threads () =
  Threadscan.smr (Threadscan.create ~config:{ Config.default with max_threads; buffer_size } ())

let alloc_node () = Ptr.of_addr (Runtime.malloc 3)

(* ------------------------------- Lemma 1 -------------------------------- *)

(* Strict memory turns any safety violation into a Thread_failure.  Run the
   shared-slot churn under many seeds and schedules; the absence of faults
   IS Lemma 1, because the heap checks every access. *)
let lemma1 =
  QCheck.Test.make ~name:"Lemma 1: reclaimed nodes are never accessible" ~count:20
    QCheck.(pair small_nat (int_range 1 4))
    (fun (seed, cores) ->
      let r = Runtime.create { cfg with seed; cores } in
      ignore
        (Runtime.add_thread r (fun () ->
             let smr = ts_smr ~buffer_size:4 ~max_threads:8 () in
             let slots = Runtime.alloc_region 4 in
             smr.Smr.thread_init ();
             let worker i () =
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   for _ = 1 to 50 do
                     let q = Runtime.read (slots + Runtime.rand_below 4) in
                     Frame.set fr 0 q;
                     if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                     Frame.set fr 0 0;
                     let p = alloc_node () in
                     let old = Runtime.read (slots + i) in
                     Runtime.write (slots + i) p;
                     if not (Ptr.is_null old) then smr.Smr.retire old
                   done);
               smr.Smr.thread_exit ()
             in
             let ws = List.init 4 (fun i -> Runtime.spawn (worker i)) in
             List.iter Runtime.join ws;
             smr.Smr.thread_exit ();
             smr.Smr.flush ()));
      ignore (Runtime.start r);
      true)

(* Same churn under the model-checking scheduler: uniformly random
   interleavings reach schedules the cost-driven scheduler never produces.
   Safety must survive all of them. *)
let lemma1_random_walks =
  QCheck.Test.make ~name:"Lemma 1 under random-walk schedules" ~count:40 QCheck.small_nat
    (fun seed ->
      let r = Runtime.create { cfg with seed; sched = Runtime.Uniform } in
      ignore
        (Runtime.add_thread r (fun () ->
             let smr = ts_smr ~buffer_size:4 ~max_threads:8 () in
             let slots = Runtime.alloc_region 3 in
             smr.Smr.thread_init ();
             let worker i () =
               smr.Smr.thread_init ();
               Frame.with_frame 1 (fun fr ->
                   for _ = 1 to 25 do
                     let q = Runtime.read (slots + Runtime.rand_below 3) in
                     Frame.set fr 0 q;
                     if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                     Frame.set fr 0 0;
                     let p = alloc_node () in
                     let old = Runtime.read (slots + i) in
                     Runtime.write (slots + i) p;
                     if not (Ptr.is_null old) then smr.Smr.retire old
                   done);
               smr.Smr.thread_exit ()
             in
             let ws = List.init 3 (fun i -> Runtime.spawn (worker i)) in
             List.iter Runtime.join ws;
             smr.Smr.thread_exit ();
             smr.Smr.flush ()));
      ignore (Runtime.start r);
      true)

(* ------------------------------- Lemma 2 -------------------------------- *)

let test_lemma2_reader_keeps_progress () =
  (* A pure reader (never calls free) completes a workload of N lookups in
     bounded time whether or not heavy reclamation runs around it. *)
  let reader_elapsed ~with_reclaimer =
    let out = ref 0 in
    ignore
      (Runtime.run ~config:{ cfg with seed = 9 } (fun () ->
           let smr = ts_smr ~buffer_size:8 ~max_threads:8 () in
           smr.Smr.thread_init ();
           let cell = Runtime.alloc_region 1 in
           Runtime.write cell (alloc_node ());
           let reader =
             Runtime.spawn (fun () ->
                 smr.Smr.thread_init ();
                 let t0 = Runtime.now () in
                 Frame.with_frame 1 (fun fr ->
                     for _ = 1 to 300 do
                       let q = Runtime.read cell in
                       Frame.set fr 0 q;
                       if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q))
                     done);
                 out := Runtime.now () - t0;
                 smr.Smr.thread_exit ())
           in
           let reclaimers =
             if with_reclaimer then
               List.init 3 (fun _ ->
                   Runtime.spawn (fun () ->
                       smr.Smr.thread_init ();
                       for _ = 1 to 120 do
                         smr.Smr.retire (alloc_node ())
                       done;
                       smr.Smr.thread_exit ()))
             else []
           in
           Runtime.join reader;
           List.iter Runtime.join reclaimers;
           smr.Smr.thread_exit ();
           smr.Smr.flush ()));
    !out
  in
  let quiet = reader_elapsed ~with_reclaimer:false in
  let noisy = reader_elapsed ~with_reclaimer:true in
  Alcotest.(check bool)
    (Fmt.str "interference is bounded (quiet %d, noisy %d)" quiet noisy)
    true
    (noisy < 4 * quiet)

(* ------------------------------- Lemma 3 -------------------------------- *)

let test_lemma3_collect_independent_of_stuck_thread () =
  (* One thread spins forever inside "application code" (it will never reach
     any quiescent point).  ThreadScan's phases must still complete, because
     the signal handler runs regardless. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = ts_smr ~buffer_size:8 ~max_threads:8 () in
         let ts_phases_done = Runtime.alloc_region 1 in
         let stuck =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               (* stuck mid-"operation": pure busy loop, no protocol calls *)
               while Runtime.read ts_phases_done = 0 do
                 Runtime.advance 7
               done;
               smr.Smr.thread_exit ())
         in
         smr.Smr.thread_init ();
         for _ = 1 to 50 do
           smr.Smr.retire (alloc_node ())
         done;
         (* several full collect phases completed while the thread spun *)
         Alcotest.(check bool) "phases completed" true (smr.Smr.counters.cleanups >= 3);
         Alcotest.(check bool) "nodes were freed" true (smr.Smr.counters.freed >= 30);
         Runtime.write ts_phases_done 1;
         Runtime.join stuck;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_lemma3_contrast_epoch_blocks () =
  (* The same situation kills epoch-based reclamation: a thread that never
     leaves its operation blocks every cleanup forever.  We bound the run
     with max_steps and expect the livelock to be caught. *)
  Alcotest.check_raises "epoch cleanup spins forever" Runtime.Step_limit_exceeded (fun () ->
      ignore
        (Runtime.run ~config:{ cfg with max_steps = 300_000 } (fun () ->
             let smr = Ts_reclaim.Epoch.create ~batch:8 ~max_threads:8 () in
             let stuck =
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   smr.Smr.op_begin ();
                   (* never calls op_end *)
                   while true do
                     Runtime.advance 7
                   done)
             in
             ignore stuck;
             smr.Smr.thread_init ();
             for _ = 1 to 20 do
               smr.Smr.op_begin ();
               smr.Smr.retire (alloc_node ());
               smr.Smr.op_end ()
             done)))

(* ------------------------------- Lemma 4 -------------------------------- *)

let test_lemma4_eventual_reclamation () =
  (* Nodes with no stack/register references at phase start are freed by
     that very phase (no false positives from the scan). *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let smr = ts_smr ~buffer_size:16 ~max_threads:4 () in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         (* retire 16 nodes, then wash the register file so nothing is
            conservatively pinned *)
         for _ = 1 to 16 do
           smr.Smr.retire (alloc_node ())
         done;
         for _ = 1 to 64 do
           ignore (Runtime.read noise)
         done;
         (* the 17th retire fills the buffer and triggers the phase *)
         smr.Smr.retire (alloc_node ());
         check "the phase freed every unreferenced node" 16 smr.Smr.counters.freed;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "properties"
    [
      ("lemma-1 safety", [ qt lemma1; qt lemma1_random_walks ]);
      ( "lemma-2 bounded interference",
        [ Alcotest.test_case "reader keeps progress" `Quick test_lemma2_reader_keeps_progress ] );
      ( "lemma-3 collect termination",
        [
          Alcotest.test_case "threadscan independent of stuck thread" `Quick
            test_lemma3_collect_independent_of_stuck_thread;
          Alcotest.test_case "epoch blocks on stuck thread (contrast)" `Quick
            test_lemma3_contrast_epoch_blocks;
        ] );
      ( "lemma-4 eventual reclamation",
        [ Alcotest.test_case "unreferenced freed same phase" `Quick test_lemma4_eventual_reclamation ]
      );
    ]
