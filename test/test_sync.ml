module Runtime = Ts_sim.Runtime
module Spinlock = Ts_sync.Spinlock
module Ticket_lock = Ts_sync.Ticket_lock
module Barrier = Ts_sync.Barrier
module Backoff = Ts_sync.Backoff

let check = Alcotest.(check int)

let cfg = Runtime.default_config

(* A non-atomic read-modify-write critical section: without mutual exclusion
   updates are lost (test_sim proves that); with a correct lock the count is
   exact. *)
let hammer ~threads ~iters ~lock ~unlock counter =
  let ts =
    List.init threads (fun _ ->
        Runtime.spawn (fun () ->
            for _ = 1 to iters do
              lock ();
              let v = Runtime.read counter in
              Runtime.advance 3;
              Runtime.write counter (v + 1);
              unlock ()
            done))
  in
  List.iter Runtime.join ts

let test_spinlock_mutual_exclusion () =
  let out = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let counter = Runtime.alloc_region 1 in
         let l = Spinlock.create () in
         hammer ~threads:8 ~iters:50
           ~lock:(fun () -> Spinlock.acquire l)
           ~unlock:(fun () -> Spinlock.release l)
           counter;
         out := Runtime.read counter));
  check "no lost updates" 400 !out

let test_spinlock_mutual_exclusion_oversubscribed () =
  let out = ref 0 in
  ignore
    (Runtime.run ~config:{ cfg with cores = 2; quantum = 2000 } (fun () ->
         let counter = Runtime.alloc_region 1 in
         let l = Spinlock.create () in
         hammer ~threads:8 ~iters:25
           ~lock:(fun () -> Spinlock.acquire l)
           ~unlock:(fun () -> Spinlock.release l)
           counter;
         out := Runtime.read counter));
  check "no lost updates oversubscribed" 200 !out

let test_spinlock_try () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let l = Spinlock.create () in
         Alcotest.(check bool) "first try wins" true (Spinlock.try_acquire l);
         Alcotest.(check bool) "second try fails" false (Spinlock.try_acquire l);
         Alcotest.(check bool) "held" true (Spinlock.is_held l);
         Spinlock.release l;
         Alcotest.(check bool) "free again" true (Spinlock.try_acquire l)))

let test_spinlock_at () =
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let word = Runtime.alloc_region 1 in
         Runtime.write word 0;
         let l = Spinlock.at word in
         Spinlock.acquire l;
         check "lock word set" 1 (Runtime.read word);
         Spinlock.release l;
         check "lock word cleared" 0 (Runtime.read word)))

let test_ticket_mutual_exclusion () =
  let out = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let counter = Runtime.alloc_region 1 in
         let l = Ticket_lock.create () in
         hammer ~threads:8 ~iters:50
           ~lock:(fun () -> Ticket_lock.acquire l)
           ~unlock:(fun () -> Ticket_lock.release l)
           counter;
         out := Runtime.read counter));
  check "ticket lock exact" 400 !out

let test_ticket_fifo () =
  (* Threads take tickets in a fixed order under a deterministic schedule;
     record the critical-section order and check it is a permutation with no
     barging: a thread that acquired its ticket first enters first. *)
  let order = ref [] in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let l = Ticket_lock.create () in
         let entered = Runtime.alloc_region 1 in
         Ticket_lock.acquire l;
         let ts =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   Ticket_lock.acquire l;
                   ignore (Runtime.faa entered 1);
                   Ticket_lock.release l))
         in
         Runtime.advance 10_000;
         Ticket_lock.release l;
         List.iter Runtime.join ts;
         order := [ Runtime.read entered ]));
  Alcotest.(check (list int)) "all entered" [ 4 ] !order

let test_barrier_blocks_until_full () =
  let out = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Barrier.create 4 in
         let before = Runtime.alloc_region 1 in
         let wrong = Runtime.alloc_region 1 in
         let ts =
           List.init 4 (fun i ->
               Runtime.spawn (fun () ->
                   Runtime.advance (i * 500);
                   ignore (Runtime.faa before 1);
                   Barrier.wait b;
                   (* at this point every thread must have registered *)
                   if Runtime.read before <> 4 then Runtime.write wrong 1))
         in
         List.iter Runtime.join ts;
         out := Runtime.read wrong));
  check "nobody passed early" 0 !out

let test_barrier_reusable () =
  let out = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Barrier.create 3 in
         let sum = Runtime.alloc_region 1 in
         let ts =
           List.init 3 (fun _ ->
               Runtime.spawn (fun () ->
                   for _ = 1 to 5 do
                     ignore (Runtime.faa sum 1);
                     Barrier.wait b
                   done))
         in
         List.iter Runtime.join ts;
         out := Runtime.read sum));
  check "five rounds of three" 15 !out

let test_backoff_grows () =
  let t1 = ref 0 and t2 = ref 0 in
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let b = Backoff.create ~min_delay:10 ~max_delay:1000 () in
         let t0 = Runtime.now () in
         Backoff.once b;
         t1 := Runtime.now () - t0;
         let t0 = Runtime.now () in
         Backoff.once b;
         t2 := Runtime.now () - t0));
  Alcotest.(check bool) "second wait longer" true (!t2 > !t1)

let () =
  Alcotest.run "ts_sync"
    [
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
          Alcotest.test_case "mutual exclusion oversubscribed" `Quick
            test_spinlock_mutual_exclusion_oversubscribed;
          Alcotest.test_case "try_acquire" `Quick test_spinlock_try;
          Alcotest.test_case "view over a word" `Quick test_spinlock_at;
        ] );
      ( "ticket",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_ticket_mutual_exclusion;
          Alcotest.test_case "all waiters eventually enter" `Quick test_ticket_fifo;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "blocks until full" `Quick test_barrier_blocks_until_full;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
        ] );
      ("backoff", [ Alcotest.test_case "delay grows" `Quick test_backoff_grows ]);
    ]
